#pragma once
// Content-addressed plan cache for the fusion service.
//
// The degradation ladder is deterministic: the same MLDG under the same
// PlanOptions always yields the same plan. Batch traffic (--storm-scale
// runs, recompilations of a hot workload) therefore re-pays the full
// ladder for content it has already planned. The cache closes that gap:
//
//   canonical MLDG content (the same node/edge fields the text
//   serialization carries, hashed structurally) + the planning options
//   -> 64-bit FNV-1a content hash -> memoized plan.
//
// Only plans that the admission gate fully admitted (job ended Verified)
// are ever inserted, and a hit does NOT shortcut admission entirely: the
// service re-runs the gate's cheap certify check (fusion/certify) against
// the job's own graph, so a corrupted or colliding entry can never turn
// into a silently-wrong Verified job -- it is dropped and the job replans
// cold. The differential replay is not repeated on a hit; it already ran
// when the entry was admitted, and the certify check pins the plan to the
// *current* job's graph.
//
// Bypass rules (callers, see service.cpp): jobs running with any fault
// point armed, and jobs short-circuited to distribution_only, never read
// or write the cache -- a faulted run must exercise the real pipeline, and
// its outcome must never poison future unfaulted runs. The
// "svc.plancache" fault point forces a bypass on demand.
//
// Eviction is strict LRU over a bounded capacity; both lookup hits and
// insertions refresh recency, so the eviction order for a fixed access
// sequence is deterministic (pinned by tests/test_plancache.cpp).
// All entry points are thread-safe (one mutex; the cache sits well off the
// solver hot path -- one lookup/insert per job, not per solve).
//
// Persistent tier (optional, `persist_dir` non-empty): every inserted plan
// is also written to `<dir>/<16-hex-key>.plan` -- a checksummed text image
// (svc/planstore.hpp) written *atomically* (temp file, flush, fsync,
// rename), so a kill -9 can leave at worst a stale temp file, never a torn
// `.plan`. A memory miss consults the disk tier lazily: a file that decodes
// cleanly (magic, key, checksum, strict fields) is promoted back into the
// LRU and served as a hit; anything else -- truncated, bit-flipped, renamed
// under the wrong key -- is *quarantined* (renamed to `<name>.quarantined`)
// and counted, and the job replans cold, which rewrites the entry: corrupt
// state heals instead of wedging. Eviction from the memory LRU leaves the
// disk file in place -- that is the tier's point: warm state survives both
// eviction and process death. The "svc.plancache.disk" fault point makes
// disk reads miss and disk writes fail on demand.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "fusion/driver.hpp"
#include "fusion/multidim.hpp"

namespace lf::svc {

/// Where a job's plan came from, for the run report.
enum class CacheOutcome {
    Hit,     // plan served from the cache (ladder skipped)
    Miss,    // cache consulted, no entry; job planned cold and may insert
    Bypass,  // cache not consulted (disabled, fault armed, distribution-only)
};
[[nodiscard]] std::string to_string(CacheOutcome outcome);

/// Monotonic counters since construction. Snapshot via PlanCache::stats().
struct PlanCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /// Hits whose entry failed the certify re-check and was dropped (the
    /// job then replans cold). Nonzero only under memory corruption, a
    /// 64-bit content-hash collision, or an injected certify fault.
    std::uint64_t invalidated = 0;
    /// Persistent tier (all zero when no persist_dir is configured).
    /// Memory misses served by a cleanly-decoded disk entry (also counted
    /// in `hits`: the cache as a whole served the plan).
    std::uint64_t disk_hits = 0;
    /// Memory misses the disk tier could not serve either.
    std::uint64_t disk_misses = 0;
    /// Plan files atomically written (insertions and corrupt-entry rebuilds).
    std::uint64_t disk_writes = 0;
    /// Atomic writes that failed (IO error or injected svc.plancache.disk
    /// fault); the in-memory entry stays valid, only persistence is lost.
    std::uint64_t disk_write_failures = 0;
    /// Corrupt/truncated/mis-keyed entries detected, renamed to
    /// `*.quarantined`, and left for offline inspection; the slot rebuilds
    /// on the next insert.
    std::uint64_t disk_quarantined = 0;
};

class PlanCache {
  public:
    /// `capacity` = maximum resident plans; 0 disables the cache entirely
    /// (lookup always misses, insert is a no-op, and the persistent tier is
    /// not consulted). `persist_dir` non-empty enables the disk tier under
    /// that directory (created if absent; creation failure degrades to a
    /// memory-only cache with a stderr warning -- persistence is an
    /// optimization, never a reason to fail a run).
    explicit PlanCache(std::size_t capacity, std::string persist_dir = {});

    PlanCache(const PlanCache&) = delete;
    PlanCache& operator=(const PlanCache&) = delete;

    /// Content hash of (graph, planning options). FNV-1a 64 over the
    /// canonical node/edge content (what the text serialization would emit,
    /// hashed without building the text) -- structurally identical jobs
    /// share a key regardless of job id.
    [[nodiscard]] static std::uint64_t key_of(const Mldg& graph, const PlanOptions& options,
                                              bool allow_distribution_fallback);

    /// Depth-d analogue of key_of. The hash starts from a distinct tag and
    /// folds in the graph dimension before any content, so a depth-d graph
    /// can never share a key with a structurally-similar 2-D graph (or with
    /// a depth-d' graph of another dimension) -- plans of different
    /// dimension are never conflated.
    [[nodiscard]] static std::uint64_t key_of_nd(const MldgN& graph, const PlanOptions& options,
                                                 bool allow_distribution_fallback);

    /// Returns a copy of the cached plan and refreshes its recency; counts
    /// a hit or a miss. The returned plan's `stages` is empty (the original
    /// ladder trace belongs to the job that planned it; the hitting job
    /// records its own cache-path trace).
    [[nodiscard]] std::optional<FusionPlan> lookup(std::uint64_t key);

    /// Inserts (or refreshes) the plan under `key`, evicting the least
    /// recently used entry when at capacity. The stored copy drops the
    /// per-rung `stages` trace. No-op at capacity 0.
    void insert(std::uint64_t key, const FusionPlan& plan);

    /// Depth-d lookup: returns the cached N-D plan (recency refreshed) or
    /// nullopt. An entry that holds a 2-D plan under the key (impossible
    /// short of a hash collision) counts as a miss.
    [[nodiscard]] std::optional<NdFusionPlan> lookup_nd(std::uint64_t key);

    /// Depth-d insert: same LRU/eviction/stats behavior as insert.
    void insert_nd(std::uint64_t key, const NdFusionPlan& plan);

    /// Drops the entry (a hit that failed the certify re-check).
    void invalidate(std::uint64_t key);

    [[nodiscard]] PlanCacheStats stats() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] const std::string& persist_dir() const { return persist_dir_; }

    /// Path the persistent tier uses for `key` (valid only with a persist
    /// dir). Exposed so tests and drills can corrupt entries on purpose.
    [[nodiscard]] std::string plan_path(std::uint64_t key) const;

    /// Keys in eviction order (least recently used first). For tests.
    [[nodiscard]] std::vector<std::uint64_t> lru_keys() const;

  private:
    struct Entry {
        std::uint64_t key = 0;
        FusionPlan plan;
        /// Set for depth-d entries; `plan` is then unused.
        std::optional<NdFusionPlan> nd_plan;
    };

    /// Memory-miss path: consults the disk tier (when configured), promotes
    /// a cleanly-decoded entry into the LRU and returns its iterator, or
    /// returns entries_.end() after counting the miss / quarantining the
    /// corrupt file. Caller holds mutex_.
    std::list<Entry>::iterator disk_load_locked(std::uint64_t key, bool want_nd);
    /// Atomically writes `e` to the disk tier unless a valid-looking file is
    /// already present. Caller holds mutex_.
    void disk_write_locked(const Entry& e);
    /// Promotes `e` to the front of the LRU, evicting at capacity. Caller
    /// holds mutex_.
    std::list<Entry>::iterator promote_locked(Entry e);

    const std::size_t capacity_;
    std::string persist_dir_;
    mutable std::mutex mutex_;
    // Most recently used at the front; map values point into the list.
    std::list<Entry> entries_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    PlanCacheStats stats_;
};

}  // namespace lf::svc
