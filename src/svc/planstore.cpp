#include "svc/planstore.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <vector>

namespace lf::svc::planstore {

namespace {

constexpr const char* kMagicLine = "lfplan v1";
/// Hard ceilings on decoded counts: a plan file is a few loops, not a
/// database. Anything larger is a corrupt or hostile length field, and
/// rejecting it up front keeps decode allocation-bounded.
constexpr std::int64_t kMaxNodes = 1 << 16;
constexpr std::int64_t kMaxEdges = 1 << 20;
constexpr std::int64_t kMaxVectorsPerEdge = 1 << 16;
constexpr std::int64_t kMaxDim = 64;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::string_view bytes) {
    std::uint64_t h = kFnvOffset;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

std::string hex16(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
    return std::string(buf, 16);
}

bool parse_hex16(std::string_view s, std::uint64_t& out) {
    if (s.size() != 16) return false;
    out = 0;
    for (const char c : s) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else return false;
        out = (out << 4) | static_cast<std::uint64_t>(digit);
    }
    return true;
}

void emit_vec(std::ostringstream& os, const Vec2& v) { os << v.x << ' ' << v.y; }
void emit_vec(std::ostringstream& os, const VecN& v) {
    for (int k = 0; k < v.dim(); ++k) {
        if (k) os << ' ';
        os << v[k];
    }
}

template <typename V>
void emit_graph(std::ostringstream& os, const BasicMldg<V>& g) {
    os << "nodes " << g.num_nodes() << '\n';
    for (int v = 0; v < g.num_nodes(); ++v) {
        const LoopNode& n = g.node(v);
        os << "node " << n.order << ' ' << n.body_cost << ' ' << n.name << '\n';
    }
    os << "edges " << g.num_edges() << '\n';
    for (int e = 0; e < g.num_edges(); ++e) {
        const auto& edge = g.edge(e);
        os << "edge " << edge.from << ' ' << edge.to << ' ' << edge.vectors.size() << '\n';
        for (const V& d : edge.vectors) {
            os << "v ";
            emit_vec(os, d);
            os << '\n';
        }
    }
}

std::string finish_file(std::ostringstream& os) {
    std::string body = os.str();
    body += "checksum " + hex16(fnv1a(body)) + "\n";
    return body;
}

// ---------------------------------------------------------------- decoding -

/// Line cursor over the body (everything before the checksum footer).
/// All reads are bounds-checked; nothing throws.
class Reader {
  public:
    explicit Reader(std::string_view body) : body_(body) {}

    /// Next line (without the trailing '\n'); false at end of body.
    bool next_line(std::string_view& line) {
        if (pos_ >= body_.size()) return false;
        const std::size_t nl = body_.find('\n', pos_);
        if (nl == std::string_view::npos) {
            // Body lines are always newline-terminated by the encoder; a
            // missing terminator is truncation.
            return false;
        }
        line = body_.substr(pos_, nl - pos_);
        pos_ = nl + 1;
        return true;
    }

    [[nodiscard]] bool exhausted() const { return pos_ >= body_.size(); }

  private:
    std::string_view body_;
    std::size_t pos_ = 0;
};

bool parse_i64(std::string_view token, std::int64_t& out) {
    if (token.empty()) return false;
    std::size_t i = 0;
    bool neg = false;
    if (token[0] == '-') {
        neg = true;
        i = 1;
        if (token.size() == 1) return false;
    }
    std::uint64_t mag = 0;
    for (; i < token.size(); ++i) {
        const char c = token[i];
        if (c < '0' || c > '9') return false;
        const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
        if (mag > (~std::uint64_t{0} - d) / 10) return false;
        mag = mag * 10 + d;
    }
    const std::uint64_t limit =
        neg ? std::uint64_t{1} << 63 : (std::uint64_t{1} << 63) - 1;
    if (mag > limit) return false;
    out = neg ? -static_cast<std::int64_t>(mag - 1) - 1 : static_cast<std::int64_t>(mag);
    return true;
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string_view> split(std::string_view line) {
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && line[i] == ' ') ++i;
        std::size_t j = i;
        while (j < line.size() && line[j] != ' ') ++j;
        if (j > i) tokens.push_back(line.substr(i, j - i));
        i = j;
    }
    return tokens;
}

/// Parses "<keyword> <i64>..." with exactly `count` integers.
bool parse_ints(std::string_view line, std::string_view keyword,
                std::vector<std::int64_t>& out, std::size_t count) {
    const auto tokens = split(line);
    if (tokens.size() != count + 1 || tokens[0] != keyword) return false;
    out.clear();
    for (std::size_t k = 1; k < tokens.size(); ++k) {
        std::int64_t v;
        if (!parse_i64(tokens[k], v)) return false;
        out.push_back(v);
    }
    return true;
}

DecodeResult fail(std::string why) {
    DecodeResult r;
    r.error = std::move(why);
    return r;
}

struct GraphLines {
    std::vector<std::int64_t> node_order;
    std::vector<std::int64_t> node_cost;
    std::vector<std::string> node_name;
    struct Edge {
        int from = 0;
        int to = 0;
        std::vector<std::vector<std::int64_t>> vectors;
    };
    std::vector<Edge> edges;
};

/// Parses the nodes/edges block; `dim` components per dependence vector.
bool parse_graph(Reader& r, std::int64_t dim, GraphLines& g, std::string& why) {
    std::string_view line;
    std::vector<std::int64_t> ints;
    if (!r.next_line(line) || !parse_ints(line, "nodes", ints, 1)) {
        why = "missing or malformed nodes count";
        return false;
    }
    const std::int64_t nnodes = ints[0];
    if (nnodes < 0 || nnodes > kMaxNodes) {
        why = "node count out of range";
        return false;
    }
    for (std::int64_t i = 0; i < nnodes; ++i) {
        if (!r.next_line(line)) {
            why = "truncated node list";
            return false;
        }
        // "node <order> <cost> <name>"; the name runs to end of line and may
        // contain spaces.
        const auto tokens = split(line);
        if (tokens.size() < 4 || tokens[0] != "node") {
            why = "malformed node line";
            return false;
        }
        std::int64_t order, cost;
        if (!parse_i64(tokens[1], order) || !parse_i64(tokens[2], cost)) {
            why = "malformed node fields";
            return false;
        }
        const std::size_t name_off = tokens[3].data() - line.data();
        g.node_order.push_back(order);
        g.node_cost.push_back(cost);
        g.node_name.emplace_back(line.substr(name_off));
    }
    if (!r.next_line(line) || !parse_ints(line, "edges", ints, 1)) {
        why = "missing or malformed edges count";
        return false;
    }
    const std::int64_t nedges = ints[0];
    if (nedges < 0 || nedges > kMaxEdges) {
        why = "edge count out of range";
        return false;
    }
    for (std::int64_t e = 0; e < nedges; ++e) {
        if (!r.next_line(line) || !parse_ints(line, "edge", ints, 3)) {
            why = "malformed edge header";
            return false;
        }
        GraphLines::Edge edge;
        const std::int64_t from = ints[0], to = ints[1], nvec = ints[2];
        if (from < 0 || from >= nnodes || to < 0 || to >= nnodes) {
            why = "edge endpoint out of range";
            return false;
        }
        if (nvec < 1 || nvec > kMaxVectorsPerEdge) {
            why = "edge vector count out of range";
            return false;
        }
        edge.from = static_cast<int>(from);
        edge.to = static_cast<int>(to);
        for (std::int64_t k = 0; k < nvec; ++k) {
            if (!r.next_line(line) ||
                !parse_ints(line, "v", ints, static_cast<std::size_t>(dim))) {
                why = "malformed dependence vector";
                return false;
            }
            edge.vectors.push_back(ints);
        }
        g.edges.push_back(std::move(edge));
    }
    return true;
}

}  // namespace

std::string encode_file(std::uint64_t key, const FusionPlan& plan) {
    std::ostringstream os;
    os << kMagicLine << '\n';
    os << "key " << hex16(key) << '\n';
    os << "flavor 2d\n";
    os << "dim 2\n";
    os << "algorithm " << static_cast<int>(plan.algorithm) << '\n';
    os << "level " << static_cast<int>(plan.level) << '\n';
    os << "schedule " << plan.schedule.x << ' ' << plan.schedule.y << '\n';
    os << "hyperplane " << plan.hyperplane.x << ' ' << plan.hyperplane.y << '\n';
    os << "failed_phase " << (plan.cyclic_doall_failed_phase ? *plan.cyclic_doall_failed_phase : -1)
       << '\n';
    os << "retiming " << plan.retiming.num_nodes() << '\n';
    for (int v = 0; v < plan.retiming.num_nodes(); ++v) {
        os << "r " << plan.retiming.of(v).x << ' ' << plan.retiming.of(v).y << '\n';
    }
    os << "body_order " << plan.body_order.size();
    for (const int v : plan.body_order) os << ' ' << v;
    os << '\n';
    emit_graph(os, plan.retimed);
    return finish_file(os);
}

std::string encode_file_nd(std::uint64_t key, const NdFusionPlan& plan) {
    std::ostringstream os;
    os << kMagicLine << '\n';
    os << "key " << hex16(key) << '\n';
    os << "flavor nd\n";
    os << "dim " << plan.retimed.dim() << '\n';
    os << "ndlevel " << static_cast<int>(plan.level) << '\n';
    os << "schedule ";
    emit_vec(os, plan.schedule);
    os << '\n';
    os << "retiming " << plan.retiming.num_nodes() << '\n';
    for (int v = 0; v < plan.retiming.num_nodes(); ++v) {
        os << "r ";
        emit_vec(os, plan.retiming.of(v));
        os << '\n';
    }
    emit_graph(os, plan.retimed);
    return finish_file(os);
}

DecodeResult decode_file(std::uint64_t expected_key, std::string_view bytes) {
    // ---- Frame: locate and verify the checksum footer first. A file whose
    // footer does not verify is torn or tampered; nothing inside it can be
    // trusted, so no field parsing happens before this check passes.
    constexpr std::string_view kFooterPrefix = "checksum ";
    if (bytes.empty() || bytes.back() != '\n') return fail("missing final newline (truncated)");
    const std::size_t footer_nl = bytes.find_last_of('\n', bytes.size() - 2);
    const std::size_t footer_begin = footer_nl == std::string_view::npos ? 0 : footer_nl + 1;
    const std::string_view footer = bytes.substr(footer_begin, bytes.size() - 1 - footer_begin);
    if (footer.size() != kFooterPrefix.size() + 16 ||
        footer.substr(0, kFooterPrefix.size()) != kFooterPrefix) {
        return fail("missing checksum footer (truncated)");
    }
    std::uint64_t stored_sum = 0;
    if (!parse_hex16(footer.substr(kFooterPrefix.size()), stored_sum)) {
        return fail("malformed checksum footer");
    }
    const std::string_view body = bytes.substr(0, footer_begin);
    if (fnv1a(body) != stored_sum) return fail("checksum mismatch");

    // ---- Header.
    Reader r(body);
    std::string_view line;
    if (!r.next_line(line) || line != kMagicLine) return fail("bad magic/version line");
    if (!r.next_line(line) || split(line).size() != 2 || split(line)[0] != "key") {
        return fail("missing key line");
    }
    std::uint64_t stored_key = 0;
    if (!parse_hex16(split(line)[1], stored_key)) return fail("malformed key");
    if (stored_key != expected_key) return fail("key mismatch (file addressed under wrong key)");
    if (!r.next_line(line)) return fail("missing flavor line");
    const auto flavor_tokens = split(line);
    if (flavor_tokens.size() != 2 || flavor_tokens[0] != "flavor") return fail("malformed flavor");
    const bool is_2d = flavor_tokens[1] == "2d";
    if (!is_2d && flavor_tokens[1] != "nd") return fail("unknown flavor");
    std::vector<std::int64_t> ints;
    if (!r.next_line(line) || !parse_ints(line, "dim", ints, 1)) return fail("missing dim");
    const std::int64_t dim = ints[0];
    if (dim < 1 || dim > kMaxDim || (is_2d && dim != 2)) return fail("dim out of range");

    if (is_2d) {
        FusionPlan plan;
        if (!r.next_line(line) || !parse_ints(line, "algorithm", ints, 1) || ints[0] < 0 ||
            ints[0] > static_cast<int>(AlgorithmUsed::DistributionFallback)) {
            return fail("malformed algorithm");
        }
        plan.algorithm = static_cast<AlgorithmUsed>(ints[0]);
        if (!r.next_line(line) || !parse_ints(line, "level", ints, 1) || ints[0] < 0 ||
            ints[0] > static_cast<int>(ParallelismLevel::Unfused)) {
            return fail("malformed level");
        }
        plan.level = static_cast<ParallelismLevel>(ints[0]);
        if (!r.next_line(line) || !parse_ints(line, "schedule", ints, 2)) {
            return fail("malformed schedule");
        }
        plan.schedule = Vec2{ints[0], ints[1]};
        if (!r.next_line(line) || !parse_ints(line, "hyperplane", ints, 2)) {
            return fail("malformed hyperplane");
        }
        plan.hyperplane = Vec2{ints[0], ints[1]};
        if (!r.next_line(line) || !parse_ints(line, "failed_phase", ints, 1)) {
            return fail("malformed failed_phase");
        }
        if (ints[0] != -1) {
            if (ints[0] != 1 && ints[0] != 2) return fail("failed_phase out of range");
            plan.cyclic_doall_failed_phase = static_cast<int>(ints[0]);
        }
        if (!r.next_line(line) || !parse_ints(line, "retiming", ints, 1) || ints[0] < 0 ||
            ints[0] > kMaxNodes) {
            return fail("malformed retiming count");
        }
        const std::int64_t nret = ints[0];
        std::vector<Vec2> rvals;
        for (std::int64_t i = 0; i < nret; ++i) {
            if (!r.next_line(line) || !parse_ints(line, "r", ints, 2)) {
                return fail("malformed retiming row");
            }
            rvals.push_back(Vec2{ints[0], ints[1]});
        }
        plan.retiming = Retiming(std::move(rvals));
        if (!r.next_line(line)) return fail("missing body_order");
        {
            const auto tokens = split(line);
            if (tokens.size() < 2 || tokens[0] != "body_order") return fail("malformed body_order");
            std::int64_t count;
            if (!parse_i64(tokens[1], count) || count < 0 || count > kMaxNodes ||
                tokens.size() != static_cast<std::size_t>(count) + 2) {
                return fail("body_order count mismatch");
            }
            for (std::size_t k = 2; k < tokens.size(); ++k) {
                std::int64_t v;
                if (!parse_i64(tokens[k], v) || v < 0 || v > kMaxNodes) {
                    return fail("body_order entry out of range");
                }
                plan.body_order.push_back(static_cast<int>(v));
            }
        }
        GraphLines g;
        std::string why;
        if (!parse_graph(r, 2, g, why)) return fail(why);
        if (!r.exhausted()) return fail("trailing bytes after graph");
        if (plan.retiming.num_nodes() != static_cast<int>(g.node_name.size())) {
            return fail("retiming/node count mismatch");
        }
        for (std::size_t i = 0; i < g.node_name.size(); ++i) {
            const int id = plan.retimed.add_node(g.node_name[i], g.node_cost[i]);
            plan.retimed.node(id).order = static_cast<int>(g.node_order[i]);
        }
        for (auto& e : g.edges) {
            std::vector<Vec2> vecs;
            vecs.reserve(e.vectors.size());
            for (const auto& v : e.vectors) vecs.push_back(Vec2{v[0], v[1]});
            plan.retimed.add_edge(e.from, e.to, std::move(vecs));
        }
        DecodeResult result;
        result.ok = true;
        result.plan = std::move(plan);
        return result;
    }

    // ---- N-D flavor.
    NdFusionPlan plan;
    plan.retimed = MldgN(static_cast<int>(dim));
    if (!r.next_line(line) || !parse_ints(line, "ndlevel", ints, 1) || ints[0] < 0 ||
        ints[0] > static_cast<int>(NdParallelism::Hyperplane)) {
        return fail("malformed ndlevel");
    }
    plan.level = static_cast<NdParallelism>(ints[0]);
    if (!r.next_line(line) || !parse_ints(line, "schedule", ints, static_cast<std::size_t>(dim))) {
        return fail("malformed schedule");
    }
    {
        VecN s = VecN::zeros(static_cast<int>(dim));
        for (int k = 0; k < static_cast<int>(dim); ++k) s[k] = ints[static_cast<std::size_t>(k)];
        plan.schedule = std::move(s);
    }
    if (!r.next_line(line) || !parse_ints(line, "retiming", ints, 1) || ints[0] < 0 ||
        ints[0] > kMaxNodes) {
        return fail("malformed retiming count");
    }
    const std::int64_t nret = ints[0];
    std::vector<VecN> rvals;
    for (std::int64_t i = 0; i < nret; ++i) {
        if (!r.next_line(line) || !parse_ints(line, "r", ints, static_cast<std::size_t>(dim))) {
            return fail("malformed retiming row");
        }
        VecN v = VecN::zeros(static_cast<int>(dim));
        for (int k = 0; k < static_cast<int>(dim); ++k) v[k] = ints[static_cast<std::size_t>(k)];
        rvals.push_back(std::move(v));
    }
    plan.retiming = RetimingN(std::move(rvals));
    GraphLines g;
    std::string why;
    if (!parse_graph(r, dim, g, why)) return fail(why);
    if (!r.exhausted()) return fail("trailing bytes after graph");
    if (plan.retiming.num_nodes() != static_cast<int>(g.node_name.size())) {
        return fail("retiming/node count mismatch");
    }
    for (std::size_t i = 0; i < g.node_name.size(); ++i) {
        const int id = plan.retimed.add_node(g.node_name[i], g.node_cost[i]);
        plan.retimed.node(id).order = static_cast<int>(g.node_order[i]);
    }
    for (auto& e : g.edges) {
        std::vector<VecN> vecs;
        vecs.reserve(e.vectors.size());
        for (const auto& comps : e.vectors) {
            VecN v = VecN::zeros(static_cast<int>(dim));
            for (int k = 0; k < static_cast<int>(dim); ++k) v[k] = comps[static_cast<std::size_t>(k)];
            vecs.push_back(std::move(v));
        }
        plan.retimed.add_edge(e.from, e.to, std::move(vecs));
    }
    DecodeResult result;
    result.ok = true;
    result.nd_plan = std::move(plan);
    return result;
}

}  // namespace lf::svc::planstore
