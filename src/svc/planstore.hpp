#pragma once
// On-disk plan encoding for the persistent plan tier (svc/plancache.hpp).
//
// A plan file is a deterministic, line-oriented text image of one admitted
// plan -- 2-D (FusionPlan) or depth-d (NdFusionPlan) -- framed so that any
// torn, bit-flipped, cross-copied or truncated file is *detected*, never
// trusted:
//
//   lfplan v1
//   key <16 hex digits>          <- must equal the content-address the file
//                                   was looked up under (detects renames)
//   flavor 2d|nd
//   dim <d>
//   ... plan fields, retiming, retimed graph ...
//   checksum <16 hex digits>     <- FNV-1a 64 over every preceding byte
//
// The encoding is byte-deterministic for a given plan (no timestamps, no
// float formatting, maps dumped in id order), which is what lets the
// kill -9 drill assert that a restarted service serves byte-identical plan
// files. decode_file is strict: every structural deviation -- bad header,
// wrong key, checksum mismatch, short field list, trailing garbage --
// returns a typed failure with a reason, and never throws or crashes on
// arbitrary bytes (fuzzed in tests/test_plancache.cpp).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "fusion/driver.hpp"
#include "fusion/multidim.hpp"

namespace lf::svc::planstore {

/// Full file image (header, key, body, checksum footer) for a 2-D plan.
/// The per-rung `stages` trace is not persisted (it belongs to the job
/// that planned, not to the content-addressed plan).
[[nodiscard]] std::string encode_file(std::uint64_t key, const FusionPlan& plan);

/// Depth-d analogue.
[[nodiscard]] std::string encode_file_nd(std::uint64_t key, const NdFusionPlan& plan);

/// Outcome of decoding a plan file. Exactly one of `plan` / `nd_plan` is
/// set on success; on failure `error` names the first defect found.
struct DecodeResult {
    bool ok = false;
    std::string error;
    std::optional<FusionPlan> plan;
    std::optional<NdFusionPlan> nd_plan;
};

/// Strict decode of `bytes` as a plan file that must be addressed by
/// `expected_key`. Rejects (with a reason) anything that is not a
/// byte-exact well-formed image: bad magic/version, key mismatch,
/// checksum mismatch, truncation, malformed or out-of-range fields,
/// trailing bytes after the footer. Never throws.
[[nodiscard]] DecodeResult decode_file(std::uint64_t expected_key, std::string_view bytes);

}  // namespace lf::svc::planstore
