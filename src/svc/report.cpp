#include "svc/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "support/faultpoint.hpp"
#include "support/json.hpp"

namespace lf::svc {

namespace {

/// Solver telemetry as a JSON object. wall_ns is emitted only when the
/// caller wants timings: it is nondeterministic, and the report is otherwise
/// byte-stable for differential testing.
void write_solver_stats(json::Writer& w, const SolverStats& st, bool include_timings) {
    w.begin_object();
    w.kv("solves", st.solves);
    w.kv("edge_scans", st.edge_scans);
    w.kv("relaxations", st.relaxations);
    w.kv("iterations", st.iterations);
    w.kv("queue_pushes", st.queue_pushes);
    w.kv("queue_pops", st.queue_pops);
    w.kv("guard_steps", st.guard_steps);
    w.kv("overflow_near_misses", st.overflow_near_misses);
    w.kv("warm_starts", st.warm_starts);
    w.kv("cold_solves", st.cold_solves);
    w.kv("rungs_shared", st.rungs_shared);
    w.kv("batch_solves", st.batch_solves);
    w.kv("delta_solves", st.delta_solves);
    if (include_timings) w.kv("wall_ns", st.wall_ns);
    w.end_object();
}

void write_stage(json::Writer& w, const StageReport& s, bool include_timings) {
    w.begin_object();
    w.kv("stage", s.stage);
    w.kv("code", to_string(s.code));
    w.kv("detail", s.detail);
    w.kv("budget", s.budget_consumed);
    // Plan-shape observables (filled on a rung's accepting stage); omitted
    // when all zero so non-planning stages stay compact. Deterministic for a
    // given plan, so they are safe outside include_timings.
    if (s.prologue_iters != 0 || s.epilogue_iters != 0 || s.retiming_magnitude != 0) {
        w.kv("prologue_iters", s.prologue_iters);
        w.kv("epilogue_iters", s.epilogue_iters);
        w.kv("retiming_magnitude", s.retiming_magnitude);
    }
    if (s.solver.any()) {
        w.key("solver");
        write_solver_stats(w, s.solver, include_timings);
    }
    w.end_object();
}

void write_attempt(json::Writer& w, const AttemptRecord& a, bool include_timings) {
    w.begin_object();
    w.kv("attempt", a.number);
    w.kv("max_steps", a.max_steps);
    w.kv("code", to_string(a.code));
    w.kv("detail", a.detail);
    w.kv("short_circuited", a.short_circuited);
    w.kv("budget_spent", a.budget_spent);
    w.key("stages").begin_array();
    for (const auto& s : a.stages) write_stage(w, s, include_timings);
    w.end_array();
    w.end_object();
}

void write_job(json::Writer& w, const JobRecord& j, bool include_timings) {
    w.begin_object();
    w.kv("id", j.id);
    w.kv("class", j.klass);
    w.kv("tenant", j.tenant);
    w.kv("depth", j.depth);
    w.kv("status", to_string(j.status));
    w.kv("attempts", static_cast<int>(j.attempts.size()));
    w.kv("algorithm", j.algorithm);
    w.kv("level", j.level);
    w.kv("certified", j.certified);
    w.kv("replay", to_string(j.replay));
    w.kv("quarantine_reason", j.quarantine_reason);
    w.kv("budget_spent", j.total_budget_spent);
    w.kv("short_circuited",
         !j.attempts.empty() && j.attempts.back().short_circuited);
    w.kv("from_checkpoint", j.from_checkpoint);
    w.kv("cache", to_string(j.cache));
    w.kv("native", exec::to_string(j.native));
    w.kv("native_detail", j.native_detail);
    w.kv("native_from_cache", j.native_from_cache);
    w.kv("native_par_threads", static_cast<std::int64_t>(j.native_par_threads));
    w.kv("native_par_tile", static_cast<std::int64_t>(j.native_par_tile));
    // Emitted-source size is deterministic for a given plan + domain; the
    // compile wall time is not, so it rides with the other timings.
    w.kv("native_source_bytes", j.native_source_bytes);
    if (include_timings) {
        w.kv("native_ns_original", j.native_ns_original);
        w.kv("native_ns_fused", j.native_ns_fused);
        w.kv("native_ns_fused_par", j.native_ns_fused_par);
        w.kv("native_compile_ns", j.native_compile_ns);
        w.kv("wall_ms", j.wall_ms);
    }
    // Per-job aggregate over every attempt's stages. Every solve is
    // accounted to exactly one stage: rungs that skip their own
    // schedulability preamble by reusing the ladder's cached validate
    // verdict report `rungs_shared` instead of re-running (and re-counting)
    // the check, so summing stages never double-counts a solve.
    SolverStats total;
    for (const auto& a : j.attempts) {
        for (const auto& s : a.stages) total.merge(s.solver);
    }
    w.key("solver");
    write_solver_stats(w, total, include_timings);
    w.key("attempt_log").begin_array();
    for (const auto& a : j.attempts) write_attempt(w, a, include_timings);
    w.end_array();
    w.end_object();
}

}  // namespace

std::string report_to_json(const RunReport& report, bool include_timings) {
    json::Writer w;
    w.begin_object();

    w.key("service").begin_object();
    w.kv("workers", report.config.workers);
    w.kv("max_attempts", report.config.retry.max_attempts);
    w.kv("initial_steps", report.config.retry.initial_steps);
    w.kv("escalation", report.config.retry.escalation);
    w.kv("deadline_ms", report.config.retry.deadline_ms);
    w.kv("breaker_threshold", report.config.breaker.failure_threshold);
    w.kv("probe_interval", report.config.breaker.probe_interval);
    w.kv("checkpoint", report.config.checkpoint_path);
    w.kv("checkpoint_failures", report.checkpoint_failures);
    w.kv("checkpoint_malformed", report.checkpoint_malformed);
    w.kv("plan_store", report.config.plan_store_dir);
    w.kv("plan_batch", report.config.plan_batch);
    w.kv("delta_max_edges", report.config.delta_max_edges);
    w.kv("plan_policy", to_string(report.config.plan_policy));
    w.end_object();

    const RunCounts counts = report.counts();
    w.key("counts").begin_object();
    w.kv("jobs", static_cast<int>(report.jobs.size()));
    w.kv("verified", counts.verified);
    w.kv("quarantined", counts.quarantined);
    w.kv("from_checkpoint", counts.from_checkpoint);
    w.kv("short_circuited", counts.short_circuited);
    w.kv("cache_hits", counts.cache_hits);
    w.kv("cache_misses", counts.cache_misses);
    w.kv("cache_bypasses", counts.cache_bypasses);
    w.kv("native_verified", counts.native_verified);
    w.kv("native_contained", counts.native_contained);
    w.kv("native_skipped", counts.native_skipped);
    w.end_object();

    w.key("plancache").begin_object();
    w.kv("capacity", static_cast<std::uint64_t>(report.config.plan_cache_capacity));
    w.kv("size", static_cast<std::uint64_t>(report.plancache_size));
    w.kv("hits", report.plancache.hits);
    w.kv("misses", report.plancache.misses);
    w.kv("insertions", report.plancache.insertions);
    w.kv("evictions", report.plancache.evictions);
    w.kv("invalidated", report.plancache.invalidated);
    w.kv("disk_hits", report.plancache.disk_hits);
    w.kv("disk_misses", report.plancache.disk_misses);
    w.kv("disk_writes", report.plancache.disk_writes);
    w.kv("disk_write_failures", report.plancache.disk_write_failures);
    w.kv("disk_quarantined", report.plancache.disk_quarantined);
    w.kv("near_miss_hits", report.plancache.near_miss_hits);
    w.kv("near_miss_misses", report.plancache.near_miss_misses);
    w.kv("dist_writes", report.plancache.dist_writes);
    w.kv("dist_loads", report.plancache.dist_loads);
    w.kv("dist_quarantined", report.plancache.dist_quarantined);
    w.end_object();

    w.key("exec").begin_object();
    w.kv("enabled", report.config.native_exec);
    w.kv("threads", static_cast<std::int64_t>(report.config.exec_threads));
    w.kv("tile", static_cast<std::int64_t>(report.config.exec_tile));
    w.kv("compiles", report.exec_compile.compiles);
    w.kv("cache_hits", report.exec_compile.cache_hits);
    w.kv("failures", report.exec_compile.failures);
    w.kv("quarantined", report.exec_compile.quarantined);
    w.end_object();

    w.key("jobs").begin_array();
    for (const auto& j : report.jobs) write_job(w, j, include_timings);
    w.end_array();

    w.key("breakers").begin_array();
    for (const auto& b : report.breakers) {
        w.begin_object();
        w.kv("class", b.klass);
        w.kv("state", to_string(b.state));
        w.kv("consecutive_failures", b.consecutive_failures);
        w.kv("trips", b.trips);
        w.kv("short_circuited", b.short_circuited);
        w.end_object();
    }
    w.end_array();

    if (include_timings) w.kv("wall_ms", report.wall_ms);
    w.end_object();
    return w.str();
}

namespace {

constexpr const char* kCheckpointHeader = "lfsvc-checkpoint v1";

/// Reads the whole manifest (empty string when absent/unreadable).
std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/// Crash-safe whole-file replace: temp file in the same directory, flush +
/// fsync, rename over the final name. A kill -9 at any point leaves either
/// the old manifest or the new one under `path`, never a torn file.
bool replace_file_atomic(const std::string& path, const std::string& bytes) {
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return false;
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = ok && std::fflush(f) == 0;
    ok = ok && ::fsync(::fileno(f)) == 0;
    ok = std::fclose(f) == 0 && ok;
    if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
    }
    return ok;
}

}  // namespace

bool append_checkpoint(const std::string& path, const JobRecord& rec) {
    if (faultpoint::triggered("svc.checkpoint")) return false;
    std::string contents = slurp(path);
    if (contents.empty()) {
        contents = std::string(kCheckpointHeader) + '\n';
    } else if (contents.back() != '\n') {
        // A torn tail from a pre-crash-safe writer (or outside damage): keep
        // the partial line -- load_checkpoint skips and counts it -- but
        // terminate it so the new record starts on its own line.
        contents.push_back('\n');
    }
    contents += rec.id;
    contents += '\t';
    contents += to_string(rec.status);
    contents += '\t';
    contents += std::to_string(rec.attempts.size());
    contents += '\t';
    contents += rec.algorithm;
    contents += '\n';
    return replace_file_atomic(path, contents);
}

std::vector<CheckpointEntry> load_checkpoint(const std::string& path, int* malformed) {
    std::vector<CheckpointEntry> entries;
    if (malformed != nullptr) *malformed = 0;
    std::ifstream in(path);
    if (!in.good()) return entries;
    const auto count_malformed = [malformed] {
        if (malformed != nullptr) ++*malformed;
    };
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line == kCheckpointHeader || line.front() == '#') continue;
        std::istringstream fields(line);
        CheckpointEntry e;
        std::string status;
        std::string attempts;
        if (!std::getline(fields, e.id, '\t') || !std::getline(fields, status, '\t') ||
            !std::getline(fields, attempts, '\t')) {
            count_malformed();  // truncated / malformed line: skip
            continue;
        }
        std::getline(fields, e.algorithm, '\t');  // optional (may be empty)
        if (status == "verified") {
            e.status = JobStatus::Verified;
        } else if (status == "quarantined") {
            e.status = JobStatus::Quarantined;
        } else {
            count_malformed();  // unknown terminal state: ignore the record
            continue;
        }
        try {
            e.attempts = std::stoi(attempts);
        } catch (const std::exception&) {
            count_malformed();
            continue;
        }
        // Last record for an id wins (a resumed run may have re-finished a
        // job the killed run also finished).
        bool replaced = false;
        for (auto& existing : entries) {
            if (existing.id == e.id) {
                existing = e;
                replaced = true;
                break;
            }
        }
        if (!replaced) entries.push_back(std::move(e));
    }
    return entries;
}

}  // namespace lf::svc
