#pragma once
// Run-report serialization and the checkpoint manifest.
//
// The run report is JSON (support/json.hpp): one object per job with
// status, attempts, rung reached, budget spent, plus per-class breaker
// state -- the machine-readable face of a batch run. Reports are
// deterministic for a fixed manifest, configuration and armed-fault set
// when the service runs single-worker; with `include_timings = false` the
// wall-clock fields are omitted so two such runs compare equal as strings.
// (Multi-worker runs are deterministic too whenever the breaker never
// opens; once it opens, which specific jobs get short-circuited depends on
// completion order.)
//
// The checkpoint manifest is deliberately NOT JSON but a line-oriented,
// append-only text format (no parser to harden, append is atomic enough
// per line, a truncated tail corrupts at most its own line):
//
//   lfsvc-checkpoint v1
//   <id>\t<status>\t<attempts>\t<algorithm>
//
// Loading tolerates unknown/malformed lines (skipped) and duplicate ids
// (last record wins), so a checkpoint from a killed run is always usable.

#include <string>
#include <vector>

#include "svc/service.hpp"

namespace lf::svc {

/// The run report as pretty-printed JSON. `include_timings` = false omits
/// every wall-clock field (for byte-for-byte comparisons).
[[nodiscard]] std::string report_to_json(const RunReport& report, bool include_timings = true);

struct CheckpointEntry {
    std::string id;
    JobStatus status = JobStatus::Pending;
    int attempts = 0;
    std::string algorithm;
};

/// Appends one record (creating the file with its header line if needed).
/// Returns false on IO failure or when the "svc.checkpoint" fault point
/// fires; the service treats that as a warning, not a job failure.
bool append_checkpoint(const std::string& path, const JobRecord& rec);

/// Loads a checkpoint manifest; a missing file is an empty checkpoint.
[[nodiscard]] std::vector<CheckpointEntry> load_checkpoint(const std::string& path);

}  // namespace lf::svc
