#pragma once
// Run-report serialization and the checkpoint manifest.
//
// The run report is JSON (support/json.hpp): one object per job with
// status, attempts, rung reached, budget spent, plus per-class breaker
// state -- the machine-readable face of a batch run. Reports are
// deterministic for a fixed manifest, configuration and armed-fault set
// when the service runs single-worker; with `include_timings = false` the
// wall-clock fields are omitted so two such runs compare equal as strings.
// (Multi-worker runs are deterministic too whenever the breaker never
// opens; once it opens, which specific jobs get short-circuited depends on
// completion order.)
//
// The checkpoint manifest is deliberately NOT JSON but a line-oriented
// text format (no parser to harden, a truncated tail corrupts at most its
// own line):
//
//   lfsvc-checkpoint v1
//   <id>\t<status>\t<attempts>\t<algorithm>
//
// Writes are crash-safe: each append rewrites the manifest through a temp
// file in the same directory (write, flush, fsync, rename), so a kill -9
// leaves either the previous manifest or the new one -- never a torn file
// under the final name. Loading still tolerates unknown/malformed lines
// (skipped AND counted, for the report) and duplicate ids (last record
// wins), so even a manifest damaged outside our control is usable.

#include <string>
#include <vector>

#include "svc/service.hpp"

namespace lf::svc {

/// The run report as pretty-printed JSON. `include_timings` = false omits
/// every wall-clock field (for byte-for-byte comparisons).
[[nodiscard]] std::string report_to_json(const RunReport& report, bool include_timings = true);

struct CheckpointEntry {
    std::string id;
    JobStatus status = JobStatus::Pending;
    int attempts = 0;
    std::string algorithm;
};

/// Appends one record (creating the file with its header line if needed).
/// The write is atomic: temp file, flush, fsync, rename -- a crash leaves
/// the previous manifest intact, never a torn one. Returns false on IO
/// failure or when the "svc.checkpoint" fault point fires; the service
/// treats that as a warning, not a job failure.
bool append_checkpoint(const std::string& path, const JobRecord& rec);

/// Loads a checkpoint manifest; a missing file is an empty checkpoint.
/// Malformed/truncated lines are skipped; when `malformed` is non-null it
/// receives how many were skipped.
[[nodiscard]] std::vector<CheckpointEntry> load_checkpoint(const std::string& path,
                                                           int* malformed = nullptr);

}  // namespace lf::svc
