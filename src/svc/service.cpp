#include "svc/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "exec/native.hpp"
#include "fusion/certify.hpp"
#include "fusion/driver.hpp"
#include "fusion/ladder.hpp"
#include "fusion/multidim.hpp"
#include "graph/solver_workspace.hpp"
#include "ir/parser.hpp"
#include "front/parse.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"
#include "svc/gate.hpp"
#include "svc/report.hpp"

namespace lf::svc {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_since(Clock::time_point t0) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0).count();
}

/// initial_steps * escalation^(attempt-1), saturating at kUnlimitedSteps.
std::uint64_t escalated_steps(const RetryPolicy& retry, int attempt) {
    if (retry.initial_steps == kUnlimitedSteps) return kUnlimitedSteps;
    const std::uint64_t factor = retry.escalation < 1 ? 1 : static_cast<std::uint64_t>(retry.escalation);
    std::uint64_t steps = retry.initial_steps;
    for (int k = 1; k < attempt; ++k) {
        if (factor != 0 && steps > kUnlimitedSteps / factor) return kUnlimitedSteps;
        steps *= factor;
    }
    return steps;
}

std::uint64_t stage_budget_sum(const std::vector<StageReport>& stages) {
    std::uint64_t total = 0;
    for (const auto& s : stages) total += s.budget_consumed;
    return total;
}

/// A failure class the retry-with-escalation loop can plausibly fix: a
/// bigger budget (ResourceExhausted) or a transient internal fault.
/// Infeasible / IllegalInput / Overflow are deterministic verdicts.
bool retryable_code(StatusCode code) {
    return code == StatusCode::ResourceExhausted || code == StatusCode::Internal;
}

/// Report strings for the N-D planner (the 2-D ones come from
/// to_string(AlgorithmUsed) / to_string(ParallelismLevel)).
std::string nd_algorithm_string(NdParallelism level) {
    return level == NdParallelism::OutermostCarried ? "Algorithm 3 (acyclic, n-D)"
                                                    : "Algorithm 5 (hyperplane, n-D)";
}

std::string nd_level_string(NdParallelism level) {
    return level == NdParallelism::OutermostCarried ? "outermost-carried DOALL"
                                                    : "DOALL-hyperplane";
}

StageReport make_stage(const char* stage, StatusCode code, std::string detail) {
    StageReport r;
    r.stage = stage;
    r.code = code;
    r.detail = std::move(detail);
    return r;
}

/// Combines the service-wide deadline with the job's own (wire-provided)
/// deadline: negative = unset on either side; with both set the tighter
/// one governs.
std::int64_t effective_deadline_ms(const RetryPolicy& retry, const JobSpec& job) {
    if (job.deadline_ms < 0) return retry.deadline_ms;
    if (retry.deadline_ms < 0) return job.deadline_ms;
    return std::min(retry.deadline_ms, job.deadline_ms);
}

}  // namespace

RunCounts RunReport::counts() const {
    RunCounts c;
    for (const auto& j : jobs) {
        if (j.status == JobStatus::Verified) ++c.verified;
        if (j.status == JobStatus::Quarantined) ++c.quarantined;
        if (j.from_checkpoint) ++c.from_checkpoint;
        if (!j.attempts.empty() && j.attempts.back().short_circuited) ++c.short_circuited;
        switch (j.cache) {
            case CacheOutcome::Hit: ++c.cache_hits; break;
            case CacheOutcome::Miss: ++c.cache_misses; break;
            case CacheOutcome::Bypass: ++c.cache_bypasses; break;
        }
        if (j.native == exec::NativeOutcome::Verified) ++c.native_verified;
        if (exec::is_native_failure(j.native)) ++c.native_contained;
        if (j.native == exec::NativeOutcome::Skipped ||
            j.native == exec::NativeOutcome::Unavailable) {
            ++c.native_skipped;
        }
    }
    return c;
}

namespace {

exec::CompileOptions native_compile_options(const ServiceConfig& config) {
    exec::CompileOptions opts;
    opts.cache_dir = config.native_cache_dir;
    return opts;
}

/// Clamps the knobs and resolves defaults before any member consumes the
/// config (the compiler is constructed from it in the init list).
ServiceConfig normalize(ServiceConfig config) {
    if (config.workers < 1) config.workers = 1;
    if (config.retry.max_attempts < 1) config.retry.max_attempts = 1;
    if (config.retry.escalation < 1) config.retry.escalation = 1;
    if (config.plan_batch < 1) config.plan_batch = 1;
    if (config.delta_max_edges < 0) config.delta_max_edges = 0;
    if (config.exec_threads < 1) config.exec_threads = 1;
    // A persistent plan tier implies a persistent object tier: compiled
    // kernels live beside the plans unless the caller chose otherwise.
    if (config.native_cache_dir.empty() && !config.plan_store_dir.empty()) {
        config.native_cache_dir = config.plan_store_dir + "/objects";
    }
    return config;
}

}  // namespace

FusionService::FusionService(ServiceConfig config)
    : config_(normalize(std::move(config))),
      breakers_(config_.breaker),
      plan_cache_(config_.plan_cache_capacity, config_.plan_store_dir),
      native_compiler_(native_compile_options(config_)) {}

/// Shared tail of the two native_admit overloads: records the check into
/// the job record and the attempt trace; false = quarantine.
static bool record_native_check(const exec::NativeCheck& nc, JobRecord& rec,
                                AttemptRecord& att) {
    rec.native = nc.outcome;
    rec.native_detail = nc.detail;
    rec.native_ns_original = nc.ns_original;
    rec.native_ns_fused = nc.ns_fused;
    rec.native_from_cache = nc.from_cache;
    rec.native_par_threads = nc.par_threads;
    rec.native_par_tile = nc.par_tile;
    rec.native_ns_fused_par = nc.ns_fused_par;
    rec.native_source_bytes = nc.source_bytes;
    rec.native_compile_ns = nc.compile_ns;
    const bool failed = exec::is_native_failure(nc.outcome);
    att.stages.push_back(make_stage("admit.native",
                                    failed ? StatusCode::Internal : StatusCode::Ok,
                                    to_string(nc.outcome) +
                                        (nc.detail.empty() ? "" : ": " + nc.detail)));
    return !failed;
}

bool FusionService::native_admit(const JobSpec& job, const FusionPlan& plan, JobRecord& rec,
                                 AttemptRecord& att) {
    if (!config_.native_exec) return true;  // rec.native stays NotRun
    exec::NativeCheck nc;
    if (job.dsl_source.empty()) {
        nc.outcome = exec::NativeOutcome::Skipped;
        nc.detail = "graph-only job: no program to emit";
    } else {
        exec::SandboxLimits limits;
        limits.wall_ms = config_.native_wall_ms;
        exec::KernelParams params;
        params.threads = config_.exec_threads;
        params.tile = config_.exec_tile;
        params.serial_cutoff = config_.exec_serial_cutoff;
        try {
            const ir::Program p = ir::parse_program(job.dsl_source);
            nc = exec::native_check(p, plan, job.domain, native_compiler_, limits, params);
        } catch (const std::exception& e) {
            nc.outcome = exec::NativeOutcome::Error;
            nc.detail = std::string("kernel emission failed: ") + e.what();
        }
    }
    return record_native_check(nc, rec, att);
}

bool FusionService::native_admit_nd(const JobSpec& job, const NdFusionPlan& plan,
                                    JobRecord& rec, AttemptRecord& att) {
    if (!config_.native_exec) return true;
    exec::NativeCheck nc;
    if (job.dsl_source.empty()) {
        nc.outcome = exec::NativeOutcome::Skipped;
        nc.detail = "graph-only job: no program to emit";
    } else {
        exec::SandboxLimits limits;
        limits.wall_ms = config_.native_wall_ms;
        exec::KernelParams params;
        params.threads = config_.exec_threads;
        params.tile = config_.exec_tile;
        params.serial_cutoff = config_.exec_serial_cutoff;
        try {
            const auto p = front::parse_basic_program<VecN>(job.dsl_source);
            const exec::MdDomain dom{job.extents_nd};
            nc = exec::native_check_nd(p, plan, dom, native_compiler_, limits, params);
        } catch (const std::exception& e) {
            nc.outcome = exec::NativeOutcome::Error;
            nc.detail = std::string("kernel emission failed: ") + e.what();
        }
    }
    return record_native_check(nc, rec, att);
}

void FusionService::checkpoint_job(const JobRecord& rec) {
    if (config_.checkpoint_path.empty()) return;
    const std::lock_guard<std::mutex> lock(checkpoint_mutex_);
    if (!append_checkpoint(config_.checkpoint_path, rec)) {
        ++checkpoint_failures_;
        std::fprintf(stderr,
                     "svc: warning: checkpoint append failed for job '%s' (%s); "
                     "a resumed run will redo it\n",
                     rec.id.c_str(), config_.checkpoint_path.c_str());
    }
}

void FusionService::prepass_chunk(const std::vector<JobSpec>& jobs,
                                  const std::vector<JobRecord>& recs, std::size_t begin,
                                  std::size_t end, std::vector<PrePlanned>& pre,
                                  PlannerWorkspace& ws) {
    if (config_.plan_batch <= 1 || end - begin < 2) return;
    // Any armed fault point forces every job onto the sequential path: the
    // faulted pipeline must run per job exactly as the trace machinery
    // expects, and nothing a faulted run computes may be shared.
    if (!faultpoint::armed_points().empty()) return;

    std::vector<BatchPlanJob> batch;
    std::vector<std::size_t> owner;  // batch slot -> begin-relative job index
    // Stable storage for delta hints (BatchPlanJob keeps pointers into it).
    std::vector<LadderWarmHints> hints;
    hints.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
        const JobSpec& job = jobs[i];
        // Eligibility mirrors what process_job's first full-strength attempt
        // would do, so consuming the pre-plan is a pure reordering:
        //   * 2-D only (the N-D path has no ladder to share);
        //   * not restored from the checkpoint (never replanned at all);
        //   * no deadline (the prepass cannot meter another job's clock);
        //   * breaker closed (Fallback attempts plan distribution_only);
        //   * not already served by the resident cache.
        if (job.depth > 2 || recs[i].from_checkpoint) continue;
        if (effective_deadline_ms(config_.retry, job) >= 0) continue;
        if (!breakers_.closed(job.klass)) continue;
        if (config_.plan_cache_capacity > 0 &&
            plan_cache_.contains(PlanCache::key_of(job.graph, plan_options(),
                                                   /*allow_distribution_fallback=*/true))) {
            continue;
        }
        BatchPlanJob b;
        b.graph = &job.graph;
        if (config_.delta_max_edges > 0) {
            std::optional<LadderWarmHints> h =
                plan_cache_.near_miss_hints(job.graph, config_.delta_max_edges);
            if (h.has_value()) {
                hints.push_back(std::move(*h));
                b.hints = &hints.back();
            }
        }
        batch.push_back(b);
        owner.push_back(i - begin);
    }
    if (batch.size() < 2) return;

    TryPlanOptions opts;
    opts.plan = plan_options();
    opts.workspace = &ws;
    opts.limits.max_steps = escalated_steps(config_.retry, 1);
    try {
        try_plan_fusion_batch(std::span<BatchPlanJob>(batch), opts);
    } catch (const std::exception&) {
        // Batch planning is best-effort; the sequential path redoes
        // everything (and records whatever actually goes wrong per job).
        return;
    }
    for (std::size_t k = 0; k < batch.size(); ++k) {
        if (!batch[k].result.has_value()) continue;
        pre[owner[k]].result = std::move(batch[k].result);
        pre[owner[k]].artifacts = std::move(batch[k].artifacts);
    }
}

void FusionService::process_job(const JobSpec& job, JobRecord& rec, PlannerWorkspace& ws,
                                PrePlanned* pre) {
    if (job.depth > 2) {
        process_job_nd(job, rec, ws);
        return;
    }
    const Clock::time_point t0 = Clock::now();
    rec.id = job.id;
    rec.klass = job.klass;
    rec.tenant = job.tenant;
    rec.depth = job.depth;
    rec.status = JobStatus::Running;

    const std::int64_t deadline_ms = effective_deadline_ms(config_.retry, job);

    // ---- Plan-cache admission decision (svc/plancache.hpp). ----
    // The fault points are consulted first so arming either is always
    // observable; each forces a bypass, as does ANY armed fault point: a
    // faulted run must exercise the real pipeline, and must never poison the
    // cache. The cache key is content-addressed, so two jobs with
    // structurally identical graphs share a plan regardless of their ids.
    const bool cache_fault = faultpoint::triggered("svc.plancache") ||
                             faultpoint::triggered("svc.plancache.disk");
    const bool cache_usable = config_.plan_cache_capacity > 0 && !cache_fault &&
                              faultpoint::armed_points().empty();
    rec.cache = CacheOutcome::Bypass;
    const std::uint64_t cache_key =
        cache_usable ? PlanCache::key_of(job.graph, plan_options(),
                                         /*allow_distribution_fallback=*/true)
                     : 0;

    auto finish = [&](JobStatus status, std::string reason) {
        rec.status = status;
        rec.quarantine_reason = std::move(reason);
        rec.total_budget_spent = 0;
        for (const auto& a : rec.attempts) rec.total_budget_spent += a.budget_spent;
        rec.wall_ms = ms_since(t0);
        // The acceptance contract: a quarantined job is diagnosable from its
        // trace. Every failure path records stages; belt-and-braces, never
        // leave an empty trace behind.
        if (status == JobStatus::Quarantined && !rec.attempts.empty() &&
            rec.attempts.back().stages.empty()) {
            rec.attempts.back().stages.push_back(
                make_stage("svc", rec.attempts.back().code, rec.attempts.back().detail));
        }
        checkpoint_job(rec);
    };

    for (int attempt = 1; attempt <= config_.retry.max_attempts; ++attempt) {
        AttemptRecord att;
        att.number = attempt;

        const AdmitMode mode = breakers_.admit(job.klass);
        att.short_circuited = mode == AdmitMode::Fallback;

        // Cache lookup, first non-short-circuited attempt only. A hit skips
        // the ladder but still re-certifies the plan against THIS job's
        // graph -- a corrupted or hash-colliding entry is invalidated and
        // the job replans cold instead of going out wrong.
        if (attempt == 1 && cache_usable && mode != AdmitMode::Fallback) {
            std::optional<FusionPlan> cached = plan_cache_.lookup(cache_key);
            if (cached.has_value()) {
                bool cert_ok = false;
                std::string cert_detail;
                try {
                    const PlanCertificate cert = certify_plan(job.graph, *cached);
                    cert_ok = cert.valid;
                    if (!cert.valid && !cert.violations.empty()) {
                        cert_detail = cert.violations.front();
                    }
                } catch (const std::exception& e) {
                    cert_detail = std::string("certifier aborted: ") + e.what();
                }
                if (cert_ok) {
                    rec.cache = CacheOutcome::Hit;
                    rec.algorithm = to_string(cached->algorithm);
                    rec.level = to_string(cached->level);
                    rec.certified = true;
                    // The differential replay ran when this entry was first
                    // admitted; a hit repeats only the certify check.
                    rec.replay = ReplayOutcome::Skipped;
                    att.stages.push_back(make_stage("svc.plancache", StatusCode::Ok, "cache hit"));
                    att.stages.push_back(make_stage("admit.certify", StatusCode::Ok, {}));
                    // Native admission still runs on a cache hit: the plan
                    // was verified when admitted, but this job's kernel may
                    // never have been compiled or run.
                    if (!native_admit(job, *cached, rec, att)) {
                        att.code = StatusCode::Internal;
                        att.detail = "native execution " + to_string(rec.native) + ": " +
                                     rec.native_detail;
                        const std::string why = att.detail;
                        rec.attempts.push_back(std::move(att));
                        breakers_.record(job.klass, mode, false);
                        finish(JobStatus::Quarantined, why);
                        return;
                    }
                    att.code = StatusCode::Ok;
                    rec.attempts.push_back(std::move(att));
                    breakers_.record(job.klass, mode, true);
                    finish(JobStatus::Verified, {});
                    return;
                }
                plan_cache_.invalidate(cache_key);
                att.stages.push_back(make_stage(
                    "svc.plancache", StatusCode::Internal,
                    "cached plan failed certify re-check; invalidated: " + cert_detail));
            }
            rec.cache = CacheOutcome::Miss;
        }

        TryPlanOptions opts;
        opts.plan = plan_options();
        opts.workspace = &ws;
        opts.limits.max_steps = escalated_steps(config_.retry, attempt);
        att.max_steps = opts.limits.max_steps;
        if (deadline_ms >= 0) {
            // Remaining share of the per-job deadline; 0 = already expired,
            // which the guard turns into a deterministic ResourceExhausted.
            const std::int64_t remaining = deadline_ms - ms_since(t0);
            opts.limits.max_wall_ms = remaining > 0 ? remaining : 0;
        }
        opts.distribution_only = mode == AdmitMode::Fallback;

        bool retryable = false;
        if (faultpoint::triggered("svc.plan")) {
            att.code = StatusCode::Internal;
            att.detail = "fault injected: svc.plan";
            att.stages.push_back(make_stage("svc.plan", StatusCode::Internal, "fault injected"));
            retryable = true;
            breakers_.record(job.klass, mode, false);
        } else {
            // try_plan_fusion is never-throwing by contract; the extra catch
            // is the service's own last line of defense (a worker must
            // survive anything a job does).
            std::optional<Result<FusionPlan>> result;
            LadderArtifacts artifacts;
            if (attempt == 1 && mode != AdmitMode::Fallback && pre != nullptr &&
                pre->result.has_value()) {
                // The chunk prepass already planned this job, batched with its
                // skeleton-mates, under these exact options (prepass_chunk's
                // eligibility rules guarantee the match). Bit-identical to
                // planning here, so the rest of the attempt cannot tell.
                result = std::move(pre->result);
                artifacts = std::move(pre->artifacts);
                pre->result.reset();
            } else {
                // Incremental re-planning: a structural near-miss of a cached
                // entry seeds the ladder with that entry's distances. The
                // warm start never changes the plan (see fusion/ladder.hpp),
                // so the certify + replay gate treats it like any cold plan.
                std::optional<LadderWarmHints> delta;
                if (attempt == 1 && cache_usable && rec.cache == CacheOutcome::Miss &&
                    config_.delta_max_edges > 0 && !opts.distribution_only) {
                    delta = plan_cache_.near_miss_hints(job.graph, config_.delta_max_edges);
                    if (delta.has_value()) opts.warm_hints = &*delta;
                }
                opts.artifacts = &artifacts;
                try {
                    result.emplace(try_plan_fusion(job.graph, opts));
                } catch (const std::exception& e) {
                    att.code = StatusCode::Internal;
                    att.detail = std::string("planner threw: ") + e.what();
                    att.stages.push_back(
                        make_stage("svc.plan", StatusCode::Internal, att.detail));
                    retryable = true;
                }
            }
            if (result.has_value() && result->ok()) {
                const FusionPlan& plan = result->value();
                att.stages.insert(att.stages.end(), plan.stages.begin(), plan.stages.end());
                rec.algorithm = to_string(plan.algorithm);
                rec.level = to_string(plan.level);
                GateResult gate = admit_plan(job, plan);
                rec.certified = gate.certified;
                rec.replay = gate.replay;
                for (auto& s : gate.stages) att.stages.push_back(std::move(s));
                att.budget_spent = stage_budget_sum(plan.stages);
                if (gate.admitted) {
                    if (!native_admit(job, plan, rec, att)) {
                        // A contained native failure is a terminal verdict
                        // on this plan, not a transient fault: quarantine,
                        // and keep the plan out of the cache.
                        att.code = StatusCode::Internal;
                        att.detail = "native execution " + to_string(rec.native) + ": " +
                                     rec.native_detail;
                        const std::string why = att.detail;
                        rec.attempts.push_back(std::move(att));
                        breakers_.record(job.klass, mode, false);
                        finish(JobStatus::Quarantined, why);
                        return;
                    }
                    att.code = StatusCode::Ok;
                    const bool cacheable =
                        rec.cache == CacheOutcome::Miss && mode != AdmitMode::Fallback;
                    rec.attempts.push_back(std::move(att));
                    breakers_.record(job.klass, mode, true);
                    // Memoize only fully admitted plans, and only when the
                    // cache was actually consulted (a bypassed job -- fault
                    // armed, distribution-only -- must not write either).
                    // The ladder's feasible distances ride along, making the
                    // entry a seed for future near-miss delta re-plans.
                    if (cacheable) plan_cache_.insert(cache_key, plan, &job.graph, &artifacts);
                    finish(JobStatus::Verified, {});
                    return;
                }
                att.code = StatusCode::Internal;
                att.detail = gate.detail;
                retryable = gate.retryable;
                breakers_.record(job.klass, mode, false);
            } else if (result.has_value()) {
                const Status& st = result->status();
                att.code = st.code();
                att.detail = st.message();
                att.stages.insert(att.stages.end(), st.stages.begin(), st.stages.end());
                att.budget_spent = stage_budget_sum(st.stages);
                retryable = retryable_code(st.code());
                breakers_.record(job.klass, mode, false);
            } else {
                breakers_.record(job.klass, mode, false);
            }
        }

        const std::string fail_detail =
            "attempt " + std::to_string(attempt) + ": " + att.detail;
        rec.attempts.push_back(std::move(att));

        const bool deadline_left = deadline_ms < 0 || ms_since(t0) < deadline_ms;
        if (!retryable || attempt == config_.retry.max_attempts || !deadline_left) {
            finish(JobStatus::Quarantined, fail_detail);
            return;
        }
    }
    // Unreachable: every loop path returns; keep the record terminal anyway.
    finish(JobStatus::Quarantined, "no attempt reached a verdict");
}

void FusionService::process_job_nd(const JobSpec& job, JobRecord& rec, PlannerWorkspace& ws) {
    const Clock::time_point t0 = Clock::now();
    rec.id = job.id;
    rec.klass = job.klass;
    rec.tenant = job.tenant;
    rec.depth = job.depth;
    rec.status = JobStatus::Running;

    const std::int64_t deadline_ms = effective_deadline_ms(config_.retry, job);

    // Same cache admission rules as the 2-D path; key_of_nd folds the graph
    // dimension in first, so a depth-d key can never collide by construction
    // with a structurally-similar 2-D job's key.
    const bool cache_fault = faultpoint::triggered("svc.plancache") ||
                             faultpoint::triggered("svc.plancache.disk");
    const bool cache_usable = config_.plan_cache_capacity > 0 && !cache_fault &&
                              faultpoint::armed_points().empty();
    rec.cache = CacheOutcome::Bypass;
    const std::uint64_t cache_key =
        cache_usable ? PlanCache::key_of_nd(job.graph_nd, plan_options(),
                                            /*allow_distribution_fallback=*/true)
                     : 0;

    auto finish = [&](JobStatus status, std::string reason) {
        rec.status = status;
        rec.quarantine_reason = std::move(reason);
        rec.total_budget_spent = 0;
        for (const auto& a : rec.attempts) rec.total_budget_spent += a.budget_spent;
        rec.wall_ms = ms_since(t0);
        if (status == JobStatus::Quarantined && !rec.attempts.empty() &&
            rec.attempts.back().stages.empty()) {
            rec.attempts.back().stages.push_back(
                make_stage("svc", rec.attempts.back().code, rec.attempts.back().detail));
        }
        checkpoint_job(rec);
    };

    for (int attempt = 1; attempt <= config_.retry.max_attempts; ++attempt) {
        AttemptRecord att;
        att.number = attempt;
        att.max_steps = escalated_steps(config_.retry, attempt);

        const AdmitMode mode = breakers_.admit(job.klass);
        att.short_circuited = mode == AdmitMode::Fallback;

        if (attempt == 1 && cache_usable && mode != AdmitMode::Fallback) {
            std::optional<NdFusionPlan> cached = plan_cache_.lookup_nd(cache_key);
            if (cached.has_value()) {
                bool cert_ok = false;
                std::string cert_detail;
                try {
                    const PlanCertificate cert = certify_plan(job.graph_nd, *cached);
                    cert_ok = cert.valid;
                    if (!cert.valid && !cert.violations.empty()) {
                        cert_detail = cert.violations.front();
                    }
                } catch (const std::exception& e) {
                    cert_detail = std::string("certifier aborted: ") + e.what();
                }
                if (cert_ok) {
                    rec.cache = CacheOutcome::Hit;
                    rec.algorithm = nd_algorithm_string(cached->level);
                    rec.level = nd_level_string(cached->level);
                    rec.certified = true;
                    rec.replay = ReplayOutcome::Skipped;
                    att.stages.push_back(make_stage("svc.plancache", StatusCode::Ok, "cache hit"));
                    att.stages.push_back(make_stage("admit.certify", StatusCode::Ok, {}));
                    if (!native_admit_nd(job, *cached, rec, att)) {
                        att.code = StatusCode::Internal;
                        att.detail = "native execution " + to_string(rec.native) + ": " +
                                     rec.native_detail;
                        const std::string why = att.detail;
                        rec.attempts.push_back(std::move(att));
                        breakers_.record(job.klass, mode, false);
                        finish(JobStatus::Quarantined, why);
                        return;
                    }
                    att.code = StatusCode::Ok;
                    rec.attempts.push_back(std::move(att));
                    breakers_.record(job.klass, mode, true);
                    finish(JobStatus::Verified, {});
                    return;
                }
                plan_cache_.invalidate(cache_key);
                att.stages.push_back(make_stage(
                    "svc.plancache", StatusCode::Internal,
                    "cached plan failed certify re-check; invalidated: " + cert_detail));
            }
            rec.cache = CacheOutcome::Miss;
        }

        bool retryable = false;
        if (faultpoint::triggered("svc.plan")) {
            att.code = StatusCode::Internal;
            att.detail = "fault injected: svc.plan";
            att.stages.push_back(make_stage("svc.plan", StatusCode::Internal, "fault injected"));
            retryable = true;
            breakers_.record(job.klass, mode, false);
        } else if (mode == AdmitMode::Fallback) {
            // Loop distribution is a 2-D construction; depth-d jobs have no
            // degraded mode, so an open breaker fails the attempt outright
            // (with a trace) instead of pretending to fall back.
            att.code = StatusCode::Internal;
            att.detail = "breaker open: no distribution fallback for depth-" +
                         std::to_string(job.depth) + " jobs";
            att.stages.push_back(make_stage("svc.plan", StatusCode::Internal, att.detail));
            breakers_.record(job.klass, mode, false);
        } else {
            std::optional<NdFusionPlan> plan;
            try {
                plan.emplace(plan_fusion_nd(job.graph_nd, &ws, config_.plan_policy));
            } catch (const std::exception& e) {
                // Unschedulable graph, solver fault, or guard trip -- the
                // N-D planner reports all of them by throwing; treat as the
                // 2-D "planner threw" case (Internal, retryable).
                att.code = StatusCode::Internal;
                att.detail = std::string("planner threw: ") + e.what();
                att.stages.push_back(make_stage("svc.plan", StatusCode::Internal, att.detail));
                retryable = true;
                breakers_.record(job.klass, mode, false);
            }
            if (plan.has_value()) {
                att.stages.push_back(make_stage("plan_fusion_nd", StatusCode::Ok, {}));
                rec.algorithm = nd_algorithm_string(plan->level);
                rec.level = nd_level_string(plan->level);
                GateResult gate = admit_plan_nd(job, *plan);
                rec.certified = gate.certified;
                rec.replay = gate.replay;
                for (auto& s : gate.stages) att.stages.push_back(std::move(s));
                if (gate.admitted) {
                    if (!native_admit_nd(job, *plan, rec, att)) {
                        att.code = StatusCode::Internal;
                        att.detail = "native execution " + to_string(rec.native) + ": " +
                                     rec.native_detail;
                        const std::string why = att.detail;
                        rec.attempts.push_back(std::move(att));
                        breakers_.record(job.klass, mode, false);
                        finish(JobStatus::Quarantined, why);
                        return;
                    }
                    att.code = StatusCode::Ok;
                    const bool cacheable = rec.cache == CacheOutcome::Miss;
                    rec.attempts.push_back(std::move(att));
                    breakers_.record(job.klass, mode, true);
                    if (cacheable) plan_cache_.insert_nd(cache_key, *plan);
                    finish(JobStatus::Verified, {});
                    return;
                }
                att.code = StatusCode::Internal;
                att.detail = gate.detail;
                retryable = gate.retryable;
                breakers_.record(job.klass, mode, false);
            }
        }

        const std::string fail_detail =
            "attempt " + std::to_string(attempt) + ": " + att.detail;
        rec.attempts.push_back(std::move(att));

        const bool deadline_left = deadline_ms < 0 || ms_since(t0) < deadline_ms;
        if (!retryable || attempt == config_.retry.max_attempts || !deadline_left) {
            finish(JobStatus::Quarantined, fail_detail);
            return;
        }
    }
    finish(JobStatus::Quarantined, "no attempt reached a verdict");
}

RunReport FusionService::run(const std::vector<JobSpec>& jobs) {
    const Clock::time_point t0 = Clock::now();
    checkpoint_failures_ = 0;

    {
        std::unordered_set<std::string> ids;
        for (const auto& job : jobs) {
            check(ids.insert(job.id).second, "FusionService: duplicate job id '" + job.id + "'");
        }
    }

    RunReport report;
    report.config = config_;
    report.jobs.assign(jobs.size(), JobRecord{});

    // Restore verified jobs from the checkpoint manifest.
    if (!config_.checkpoint_path.empty()) {
        std::unordered_map<std::string, CheckpointEntry> done;
        int malformed = 0;
        for (auto& e : load_checkpoint(config_.checkpoint_path, &malformed)) {
            if (e.status == JobStatus::Verified) done[e.id] = std::move(e);
        }
        report.checkpoint_malformed = malformed;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const auto it = done.find(jobs[i].id);
            if (it == done.end()) continue;
            JobRecord& rec = report.jobs[i];
            rec.id = jobs[i].id;
            rec.klass = jobs[i].klass;
            rec.tenant = jobs[i].tenant;
            rec.depth = jobs[i].depth;
            rec.status = JobStatus::Verified;
            rec.algorithm = it->second.algorithm;
            rec.from_checkpoint = true;
        }
    }

    std::atomic<std::size_t> next{0};
    const int nworkers = std::min<int>(config_.workers, static_cast<int>(jobs.size()));
    // Batch size never starves a worker: on small manifests the chunk
    // shrinks toward an even split so the pool still runs fully parallel.
    const std::size_t per_worker =
        jobs.empty() ? 1
                     : (jobs.size() + static_cast<std::size_t>(std::max(nworkers, 1)) - 1) /
                           static_cast<std::size_t>(std::max(nworkers, 1));
    const std::size_t chunk =
        std::max<std::size_t>(1, std::min<std::size_t>(
                                     static_cast<std::size_t>(config_.plan_batch), per_worker));
    auto worker = [&]() {
        // One solver arena per worker thread: every job this thread plans
        // reuses the same scratch buffers, so steady-state planning is
        // allocation-free (see graph/solver_workspace.hpp). Workers pull
        // plan_batch jobs at a time; eligible chunk-mates pre-plan as one
        // try_plan_fusion_batch call (skeleton-sharing lockstep solves)
        // before each job runs through the unchanged admission machinery.
        PlannerWorkspace ws;
        for (;;) {
            const std::size_t begin = next.fetch_add(chunk);
            if (begin >= jobs.size()) return;
            const std::size_t end = std::min(jobs.size(), begin + chunk);
            std::vector<PrePlanned> pre(end - begin);
            prepass_chunk(jobs, report.jobs, begin, end, pre, ws);
            for (std::size_t i = begin; i < end; ++i) {
                if (report.jobs[i].from_checkpoint) continue;
                process_job(jobs[i], report.jobs[i], ws, &pre[i - begin]);
            }
        }
    };

    if (nworkers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(nworkers));
        for (int t = 0; t < nworkers; ++t) pool.emplace_back(worker);
        for (auto& t : pool) t.join();
    }

    report.breakers = breakers_.snapshot();
    report.checkpoint_failures = checkpoint_failures_;
    report.plancache = plan_cache_.stats();
    report.plancache_size = plan_cache_.size();
    report.exec_compile = native_compiler_.stats();
    report.wall_ms = ms_since(t0);
    return report;
}

}  // namespace lf::svc
