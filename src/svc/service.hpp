#pragma once
// The concurrent fusion service: a worker pool draining a queue of named
// MLDG jobs through try_plan_fusion, hardened for batch operation.
//
// The paper's point is that all three fusion algorithms are polynomial --
// cheap enough to run as an always-on compilation service. This layer
// supplies the service half of that claim:
//
//   * a fixed pool of worker threads consuming a job queue (job order in
//     the report is manifest order, independent of scheduling);
//   * every planning attempt runs under a ResourceGuard step budget and a
//     per-job wall-clock deadline;
//   * ResourceExhausted and fault-injected (Internal) failures are retried
//     with exponentially escalated step budgets, up to
//     RetryPolicy::max_attempts;
//   * a per-workload-class circuit breaker (svc/breaker.hpp) opens after K
//     consecutive full-ladder failures and short-circuits the class to the
//     loop-distribution fallback;
//   * the admission gate (svc/gate.hpp) independently certifies and
//     differentially replays every plan before a job may end Verified;
//     anything else ends Quarantined with its StageReport trace;
//   * a bounded content-addressed plan cache (svc/plancache.hpp) memoizes
//     admitted plans: structurally identical jobs skip the ladder (the
//     cheap certify check still runs); fault-armed and distribution-only
//     jobs bypass it entirely;
//   * every worker thread owns a PlannerWorkspace
//     (graph/solver_workspace.hpp), so steady-state planning is
//     allocation-free and consecutive ladder rungs warm-start each other;
//   * the job manifest checkpoints to disk (svc/report.hpp) so a killed
//     run resumes without redoing verified jobs.
//
// run() never throws for job-level failures; one poisoned workload ends
// one Quarantined record, never the batch.

#include <cstdint>
#include <string>
#include <vector>

#include "exec/compile.hpp"
#include "svc/breaker.hpp"
#include "svc/job.hpp"
#include "svc/plancache.hpp"

namespace lf {
struct PlannerWorkspace;
}  // namespace lf

namespace lf::svc {

struct RetryPolicy {
    /// Total planning attempts per job (first try + retries).
    int max_attempts = 3;
    /// Step budget of the first attempt; each retry multiplies the budget
    /// by `escalation` (saturating). kUnlimitedSteps disables metering.
    std::uint64_t initial_steps = std::uint64_t{1} << 14;
    /// Budget multiplier per retry (>= 1).
    int escalation = 8;
    /// Per-job wall-clock deadline in milliseconds across *all* of the
    /// job's attempts; negative = unlimited. An expired deadline fails the
    /// attempt with ResourceExhausted and forbids further retries.
    std::int64_t deadline_ms = -1;
};

struct ServiceConfig {
    /// Worker threads (clamped to >= 1).
    int workers = 4;
    RetryPolicy retry;
    BreakerConfig breaker;
    /// Checkpoint manifest path; empty disables checkpointing. An existing
    /// checkpoint is loaded by run(): jobs it records as Verified are
    /// restored (from_checkpoint = true) and not redone.
    std::string checkpoint_path;
    /// Plan-cache capacity in resident plans (svc/plancache.hpp); 0
    /// disables the cache (every job records cache = bypass).
    std::size_t plan_cache_capacity = 128;
    /// Directory of the persistent plan tier (svc/plancache.hpp); empty
    /// disables it. Admitted plans are written there atomically and reloaded
    /// lazily on memory misses, so warm state survives a kill -9.
    std::string plan_store_dir;
    /// Opt-in native-execution admission (exec/native.hpp): before a job may
    /// end Verified, its emitted C kernel is compiled, run in the forked
    /// sandbox, and differential-checked against the interpreter. A failure
    /// outcome (crash / timeout / mismatch / compile error) quarantines the
    /// job -- contained, the service survives; a missing compiler degrades
    /// gracefully to NativeOutcome::Unavailable (the job still verifies).
    bool native_exec = false;
    /// Compile-cache directory for native_exec. Empty with a plan_store_dir
    /// set defaults to "<plan_store_dir>/objects", so pointing --store at a
    /// directory gives the object tier the same kill-9 persistence as the
    /// plan tier (warm restarts recompile nothing). Empty without a store:
    /// a fresh per-run mkdtemp.
    std::string native_cache_dir;
    /// Sandbox wall-clock watchdog for native kernel runs (ms).
    std::int64_t native_wall_ms = 10'000;
    /// Lanes for the ABI v2 parallel admission run (exec/native.hpp):
    /// <= 1 runs only the serial kernel entry; > 1 additionally runs
    /// lf_kernel_run_par with this thread count and quarantines on any
    /// divergence from the serial kernel or the interpreter. One compiled
    /// object serves every thread count -- this knob never re-keys the
    /// object cache.
    int exec_threads = 1;
    /// Scheduler tile for the parallel run (iterations per tile; <= 0 lets
    /// the kernel pick ceil(round / lanes)).
    int exec_tile = 0;
    /// Rounds narrower than this run whole on lane 0 (parallel run only).
    std::int64_t exec_serial_cutoff = 0;
    /// Jobs a worker pulls from the queue at once. Chunks of eligible 2-D
    /// jobs (first attempt, no deadline, closed breaker, not cached, no
    /// fault armed) are pre-planned through try_plan_fusion_batch, so jobs
    /// sharing a constraint skeleton solve in lockstep; per-job results are
    /// bit-identical to sequential planning. 1 disables batching.
    int plan_batch = 8;
    /// Incremental re-planning: a cache miss whose graph differs from a
    /// cached entry on at most this many edges' dependence-vector sets
    /// warm-starts the ladder from that entry's stored distances
    /// (PlanCache::near_miss_hints). 0 disables delta re-planning.
    int delta_max_edges = 4;
    /// Planning objective (fusion/driver.hpp) applied to every job: the
    /// default reproduces the pre-policy service bit-for-bit (plans, cache
    /// keys, reports); SmallestCode additionally runs the magnitude
    /// post-pass and keys the cache per policy.
    PlanPolicy plan_policy = PlanPolicy::FastestSchedule;
};

struct RunCounts {
    int verified = 0;
    int quarantined = 0;
    int from_checkpoint = 0;
    /// Jobs whose final attempt was short-circuited by the breaker.
    int short_circuited = 0;
    /// Per-job plan-cache outcomes (hit + miss + bypass = jobs).
    int cache_hits = 0;
    int cache_misses = 0;
    int cache_bypasses = 0;
    /// Native-execution outcomes (all zero unless native_exec was on):
    /// jobs whose kernel ran and matched, jobs quarantined by a contained
    /// native failure, and jobs that skipped natively (graph-only, unfused
    /// fallback, or no compiler on PATH).
    int native_verified = 0;
    int native_contained = 0;
    int native_skipped = 0;
};

struct RunReport {
    ServiceConfig config;
    /// One record per job, in manifest order.
    std::vector<JobRecord> jobs;
    std::vector<BreakerSnapshot> breakers;
    /// Checkpoint appends that failed (IO error or injected svc.checkpoint
    /// fault); the run continues, resume just redoes those jobs.
    int checkpoint_failures = 0;
    /// Malformed/truncated manifest lines skipped while restoring the
    /// checkpoint (a killed writer's torn tail, manual edits); the affected
    /// jobs are simply redone.
    int checkpoint_malformed = 0;
    /// Plan-cache counters at the end of the run (cumulative across every
    /// run() of the same FusionService -- the cache persists between runs).
    PlanCacheStats plancache;
    std::size_t plancache_size = 0;
    /// Kernel-compiler counters at the end of the run (cumulative across
    /// every run() of the same FusionService; all zero without native_exec).
    exec::CompileStats exec_compile;
    std::int64_t wall_ms = 0;

    [[nodiscard]] RunCounts counts() const;
};

class FusionService {
  public:
    explicit FusionService(ServiceConfig config = {});

    /// Drives every job to a terminal state (Verified | Quarantined) and
    /// returns the full report. Job ids must be unique (lf::Error otherwise
    /// -- a manifest bug, not a job failure).
    [[nodiscard]] RunReport run(const std::vector<JobSpec>& jobs);

    /// Cumulative plan-cache counters (across every run() of this service;
    /// includes the persistent tier's disk_* counters). For the network
    /// edge's drills and stats endpoints.
    [[nodiscard]] PlanCacheStats plancache_stats() const { return plan_cache_.stats(); }

    /// Persistent-tier path of `key`'s plan file (empty plan_store_dir =
    /// no persistent tier). Exposed for drills that corrupt entries.
    [[nodiscard]] std::string plan_file_path(std::uint64_t key) const {
        return plan_cache_.plan_path(key);
    }

    /// Cumulative kernel-compiler counters (zero without native_exec).
    [[nodiscard]] exec::CompileStats exec_stats() const { return native_compiler_.stats(); }

  private:
    /// A first-attempt plan computed ahead of process_job by the chunk
    /// prepass. `result` engaged = consumable; process_job takes it instead
    /// of calling try_plan_fusion, under exactly the options the prepass
    /// used (verified by the eligibility rules in prepass_chunk).
    struct PrePlanned {
        std::optional<Result<FusionPlan>> result;
        LadderArtifacts artifacts;
    };

    /// Batch-plans the eligible jobs of [begin, end) into `pre` (indexed
    /// begin-relative) via try_plan_fusion_batch, attaching near-miss
    /// delta-solve hints from the plan cache. Ineligible jobs (N-D,
    /// checkpointed, deadline set, open breaker, already cached, any fault
    /// point armed) are left for the sequential path; so is everything if
    /// fewer than two jobs are eligible or the batch planner throws.
    void prepass_chunk(const std::vector<JobSpec>& jobs, const std::vector<JobRecord>& recs,
                       std::size_t begin, std::size_t end, std::vector<PrePlanned>& pre,
                       PlannerWorkspace& ws);
    void process_job(const JobSpec& job, JobRecord& rec, PlannerWorkspace& ws,
                     PrePlanned* pre = nullptr);
    /// Depth-d jobs (JobSpec::depth > 2): plan_fusion_nd + the N-D gate,
    /// under the same retry / breaker / cache / checkpoint machinery.
    void process_job_nd(const JobSpec& job, JobRecord& rec, PlannerWorkspace& ws);
    void checkpoint_job(const JobRecord& rec);
    /// Native-execution admission step (NotRun when native_exec is off,
    /// Skipped for graph-only jobs). Fills the record's native_* fields and
    /// returns whether the job may still verify.
    bool native_admit(const JobSpec& job, const FusionPlan& plan, JobRecord& rec,
                      AttemptRecord& att);
    bool native_admit_nd(const JobSpec& job, const NdFusionPlan& plan, JobRecord& rec,
                         AttemptRecord& att);
    /// The PlanOptions every planning path and cache-key computation derives
    /// from the config. One construction site keeps the prepass, the
    /// sequential path, and both key_of calls agreeing on the policy.
    [[nodiscard]] PlanOptions plan_options() const {
        PlanOptions o;
        o.policy = config_.plan_policy;
        return o;
    }

    ServiceConfig config_;
    CircuitBreakerBank breakers_;
    PlanCache plan_cache_;
    exec::KernelCompiler native_compiler_;
    std::mutex checkpoint_mutex_;
    int checkpoint_failures_ = 0;
};

}  // namespace lf::svc
