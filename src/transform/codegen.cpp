#include "transform/codegen.hpp"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"

namespace lf::transform {

namespace {

/// Symbolic bound "base + offset" where base is "", "n" or "m".
std::string sym(const char* base, std::int64_t offset) {
    std::ostringstream os;
    if (base[0] == '\0') {
        os << offset;
        return os.str();
    }
    os << base;
    if (offset > 0) os << '+' << offset;
    if (offset < 0) os << offset;
    return os.str();
}

void emit_statements(std::ostringstream& os, const FusedLoopBody& body, const std::string& indent) {
    for (const ir::Statement& s : body.statements) {
        os << indent << s.shifted(body.retiming).str() << '\n';
    }
}

/// Emits one stand-alone DOALL loop for `body` covering its whole j-range
/// (used for prologue/epilogue rows, cf. paper Figure 12(b)).
void emit_row_loop(std::ostringstream& os, const FusedLoopBody& body, const std::string& indent) {
    os << indent << "DOALL j = " << sym("", -body.retiming.y) << ", "
       << sym("m", -body.retiming.y) << "   ! loop " << body.label << '\n';
    emit_statements(os, body, indent + "  ");
    os << indent << "END DOALL\n";
}

}  // namespace

std::string emit_original(const ir::Program& p) {
    std::ostringstream os;
    os << "! program " << p.name << " (original)\n";
    os << "DO i = 0, n\n";
    for (const ir::LoopNest& loop : p.loops) {
        os << "  DOALL j = 0, m   ! loop " << loop.label << '\n';
        for (const ir::Statement& s : loop.body) os << "    " << s.str() << '\n';
        os << "  END DOALL\n";
    }
    os << "END DO\n";
    return os.str();
}

std::string emit_fused_guarded(const FusedProgram& fp, const Domain& dom) {
    std::ostringstream os;
    os << "! program " << fp.name << " (" << to_string(fp.algorithm) << ", guarded form)\n";
    os << "DO i = " << fp.point_i_lo() << ", " << sym("n", fp.point_i_hi(dom) - dom.n) << '\n';
    const char* inner = fp.level == ParallelismLevel::InnerDoall ? "DOALL" : "DO";
    os << "  " << inner << " j = " << fp.point_j_lo() << ", "
       << sym("m", fp.point_j_hi(dom) - dom.m) << '\n';
    for (const FusedLoopBody& body : fp.bodies) {
        os << "    IF (" << sym("", -body.retiming.x) << " <= i .AND. i <= "
           << sym("n", -body.retiming.x) << " .AND. " << sym("", -body.retiming.y)
           << " <= j .AND. j <= " << sym("m", -body.retiming.y) << ") THEN   ! loop "
           << body.label << '\n';
        emit_statements(os, body, "      ");
        os << "    END IF\n";
    }
    os << "  END " << inner << "\nEND DO\n";
    return os.str();
}

std::string emit_fused_peeled(const FusedProgram& fp, const Domain& dom) {
    check(fp.level == ParallelismLevel::InnerDoall,
          "emit_fused_peeled: only inner-DOALL plans have a row-peeled form");
    std::ostringstream os;
    os << "! program " << fp.name << " (" << to_string(fp.algorithm) << ", peeled form)\n";

    const std::int64_t i_lo = fp.point_i_lo();
    const std::int64_t main_i_lo = fp.main_i_lo();
    // Offsets of the high bounds relative to n (domain-independent).
    const std::int64_t i_hi_off = fp.point_i_hi(dom) - dom.n;
    const std::int64_t main_i_hi_off = fp.main_i_hi(dom) - dom.n;
    const std::int64_t j_lo = fp.point_j_lo();
    const std::int64_t main_j_lo = fp.main_j_lo();
    const std::int64_t j_hi_off = fp.point_j_hi(dom) - dom.m;
    const std::int64_t main_j_hi_off = fp.main_j_hi(dom) - dom.m;

    // --- Prologue rows: only some loops are active. ---
    if (i_lo < main_i_lo) {
        os << "! --- prologue rows ---\n";
        for (std::int64_t i = i_lo; i < main_i_lo; ++i) {
            os << "! i = " << i << '\n';
            for (const FusedLoopBody& body : fp.bodies) {
                if (i + body.retiming.x >= 0 && i + body.retiming.x <= dom.n) {
                    std::ostringstream row;
                    emit_row_loop(row, body, "");
                    // Specialize 'i' to the concrete row by a leading note;
                    // the loop text itself keeps symbolic i for readability.
                    os << "i = " << i << '\n' << row.str();
                }
            }
        }
    }

    // --- Steady state. ---
    os << "DO i = " << main_i_lo << ", " << sym("n", main_i_hi_off) << '\n';
    if (j_lo < main_j_lo) {
        os << "  ! j-prologue (peeled iterations)\n";
        for (const FusedLoopBody& body : fp.bodies) {
            const std::int64_t b_lo = -body.retiming.y;
            if (b_lo < main_j_lo) {
                os << "  DO j = " << b_lo << ", " << main_j_lo - 1 << "   ! loop " << body.label
                   << '\n';
                emit_statements(os, body, "    ");
                os << "  END DO\n";
            }
        }
    }
    os << "  DOALL j = " << main_j_lo << ", " << sym("m", main_j_hi_off) << '\n';
    for (const FusedLoopBody& body : fp.bodies) {
        emit_statements(os, body, "    ");
    }
    os << "  END DOALL\n";
    if (main_j_hi_off < j_hi_off) {
        os << "  ! j-epilogue (peeled iterations)\n";
        for (const FusedLoopBody& body : fp.bodies) {
            const std::int64_t b_hi_off = -body.retiming.y;  // body high bound = m + b_hi_off
            if (b_hi_off > main_j_hi_off) {
                os << "  DO j = " << sym("m", main_j_hi_off + 1) << ", " << sym("m", b_hi_off)
                   << "   ! loop " << body.label << '\n';
                emit_statements(os, body, "    ");
                os << "  END DO\n";
            }
        }
    }
    os << "END DO\n";

    // --- Epilogue rows. ---
    if (main_i_hi_off < i_hi_off) {
        os << "! --- epilogue rows ---\n";
        for (std::int64_t off = main_i_hi_off + 1; off <= i_hi_off; ++off) {
            os << "! i = " << sym("n", off) << '\n';
            for (const FusedLoopBody& body : fp.bodies) {
                if (-body.retiming.x - dom.n <= off && off <= -body.retiming.x) {
                    os << "i = " << sym("n", off) << '\n';
                    emit_row_loop(os, body, "");
                }
            }
        }
    }
    return os.str();
}

std::string emit_wavefront(const FusedProgram& fp, const Domain& dom) {
    std::ostringstream os;
    const Vec2 s = fp.schedule;
    os << "! program " << fp.name << " (" << to_string(fp.algorithm) << ", wavefront form)\n";
    os << "! schedule s = " << s.str() << ", hyperplane h = " << fp.hyperplane.str() << '\n';
    const std::int64_t ilo = fp.point_i_lo(), ihi = fp.point_i_hi(dom);
    const std::int64_t jlo = fp.point_j_lo(), jhi = fp.point_j_hi(dom);
    // t range over the four corners of the fused bounding box.
    const std::int64_t t1 = s.x * ilo + s.y * jlo, t2 = s.x * ilo + s.y * jhi;
    const std::int64_t t3 = s.x * ihi + s.y * jlo, t4 = s.x * ihi + s.y * jhi;
    const std::int64_t tlo = std::min({t1, t2, t3, t4});
    const std::int64_t thi = std::max({t1, t2, t3, t4});
    os << "DO t = " << tlo << ", " << thi << "   ! hyperplanes, sequential\n";
    os << "  DOALL (i, j) WITH " << s.x << "*i + " << s.y << "*j == t, " << ilo << " <= i <= "
       << ihi << ", " << jlo << " <= j <= " << jhi << '\n';
    for (const FusedLoopBody& body : fp.bodies) {
        os << "    IF (" << -body.retiming.x << " <= i <= " << sym("n", -body.retiming.x)
           << " .AND. " << -body.retiming.y << " <= j <= " << sym("m", -body.retiming.y)
           << ") THEN   ! loop " << body.label << '\n';
        emit_statements(os, body, "      ");
        os << "    END IF\n";
    }
    os << "  END DOALL\nEND DO\n";
    return os.str();
}

std::string emit_transformed(const FusedProgram& fp, const Domain& dom) {
    check(!faultpoint::triggered("codegen.emit"), "emit_transformed: fault injected");
    return fp.level == ParallelismLevel::InnerDoall ? emit_fused_peeled(fp, dom)
                                                    : emit_wavefront(fp, dom);
}

}  // namespace lf::transform
