#pragma once
// Textual code generation in the paper's pseudo-Fortran style.
//
// Three emitters:
//   * emit_original   -- the untransformed Figure-1 form (DO i / DOALL j per
//                        loop), e.g. paper Figure 2(b).
//   * emit_fused_guarded -- the fused nest with explicit membership guards;
//                        always correct, used as the reference form.
//   * emit_fused_peeled -- the paper's presentation (Figures 3(b)/12(b)):
//                        explicit prologue rows, per-row j-peels, the steady
//                        state DOALL core, and epilogue rows. Inner-DOALL
//                        plans only.
//   * emit_wavefront  -- hyperplane (Algorithm 5) schedules: a sequential
//                        loop over hyperplanes t = s.p with a DOALL over the
//                        points of each hyperplane.
//
// Statement text is shifted by the retiming (node u's statement printed with
// subscripts offset by r(u)), exactly as in the paper's transformed codes.

#include <string>

#include "transform/fused_program.hpp"

namespace lf::transform {

[[nodiscard]] std::string emit_original(const ir::Program& p);

[[nodiscard]] std::string emit_fused_guarded(const FusedProgram& fp, const Domain& dom);

[[nodiscard]] std::string emit_fused_peeled(const FusedProgram& fp, const Domain& dom);

[[nodiscard]] std::string emit_wavefront(const FusedProgram& fp, const Domain& dom);

/// Dispatches on fp.level: peeled form for inner-DOALL plans, wavefront
/// otherwise.
[[nodiscard]] std::string emit_transformed(const FusedProgram& fp, const Domain& dom);

}  // namespace lf::transform
