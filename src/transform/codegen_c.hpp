#pragma once
// C code generation: emits a complete, self-verifying C99 program containing
// both the original loop nest and its fused form, over arrays initialized
// with exactly the same deterministic boundary values the interpreter uses
// (exec::ArrayStore::boundary_value). The program runs both forms, compares
// every produced cell bit-for-bit, prints "OK <checksum>" on success and
// "MISMATCH ..." otherwise.
//
// The fused loop is annotated with `#pragma omp parallel for` when the plan's
// rows are DOALL, so the emitted code parallelizes under -fopenmp exactly as
// the paper intends (and compiles unchanged without it).

#include <string>

#include "transform/fused_program.hpp"

namespace lf::transform {

/// The complete self-verifying C program (original + fused + comparison).
[[nodiscard]] std::string emit_c_program(const ir::Program& p, const FusedProgram& fp,
                                         const Domain& dom);

/// The checksum the emitted program prints on success: the sum over every
/// in-domain cell of every written array after the *original* execution,
/// formatted with "%.17g". Computable host-side for cross-checking.
[[nodiscard]] std::string expected_c_checksum(const ir::Program& p, const Domain& dom);

}  // namespace lf::transform
