#pragma once
// C code generation: emits a complete, self-verifying C99 program containing
// both the original loop nest and its fused form, over arrays initialized
// with exactly the same deterministic boundary values the interpreter uses
// (exec::ArrayStore::boundary_value). The program runs both forms, compares
// every produced cell bit-for-bit, prints "OK <checksum>" on success and
// "MISMATCH ..." otherwise.
//
// The fused loop is annotated with `#pragma omp parallel for` (guarded by
// `#if defined(_OPENMP)` so the file stays -Wall -Werror clean without
// -fopenmp) when the plan's rows are DOALL; hyperplane plans additionally get
// a wavefront emission over t = s1*i + j whose hyperplanes are DOALL, with
// the sequential lexicographic scan as the non-OpenMP branch.
//
// Two output shapes share the same loop emission:
//
//   emit_c_program        -- stand-alone program with main(), prints
//                            "OK <checksum>" / "MISMATCH ...".
//   emit_c_kernel_library -- no main(); exports
//                            int lf_kernel_run(lf_kernel_result*) for the
//                            sandboxed native backend (src/exec/runner.hpp)
//                            to dlopen and differential-check.

#include <string>

#include "transform/fused_program.hpp"

namespace lf::transform {

/// The complete self-verifying C program (original + fused + comparison).
[[nodiscard]] std::string emit_c_program(const ir::Program& p, const FusedProgram& fp,
                                         const Domain& dom);

/// The same computation as a shared-object kernel: exports
/// `int lf_kernel_run(lf_kernel_result*)` which runs both forms from one
/// deterministic init, times each with CLOCK_MONOTONIC, counts bitwise cell
/// mismatches and returns both checksums (layout: exec::KernelResult).
[[nodiscard]] std::string emit_c_kernel_library(const ir::Program& p, const FusedProgram& fp,
                                                const Domain& dom);

/// The checksum the emitted program prints on success: the sum over every
/// in-domain cell of every written array after the *original* execution,
/// formatted with "%.17g". Computable host-side for cross-checking.
[[nodiscard]] std::string expected_c_checksum(const ir::Program& p, const Domain& dom);

}  // namespace lf::transform
