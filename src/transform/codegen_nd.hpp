#pragma once
// Self-verifying C output for the depth-d program model: the emitted C99
// program contains the original nested schedule and the retimed, fused
// lexicographic scan (valid because every retimed dependence is
// lexicographically non-negative and the body order serializes the (0..0)
// dependences), compares every produced cell and prints "OK <checksum>".

#include <string>

#include "exec/store_nd.hpp"
#include "front/ast.hpp"
#include "fusion/multidim.hpp"

namespace lf::transform {

/// The complete self-verifying C program for `p` under `plan` over `dom`.
[[nodiscard]] std::string emit_md_c_program(const front::BasicProgram<VecN>& p,
                                            const NdFusionPlan& plan, const exec::MdDomain& dom);

/// The same computation as a shared-object kernel for the sandboxed native
/// backend (src/exec/runner.hpp): no main(); exports
/// `int lf_kernel_run(lf_kernel_result*)` which runs both forms from one
/// deterministic init, times each, counts bitwise mismatches and returns
/// both checksums. OutermostCarried plans carry a guarded OpenMP pragma on
/// the level-1 loop (all inner levels are DOALL).
[[nodiscard]] std::string emit_md_c_kernel_library(const front::BasicProgram<VecN>& p,
                                                   const NdFusionPlan& plan,
                                                   const exec::MdDomain& dom);

/// The "OK <checksum>" checksum the emitted program prints, computed by the
/// interpreter (cells outer, arrays inner, matching the C accumulation
/// order).
[[nodiscard]] std::string expected_md_c_checksum(const front::BasicProgram<VecN>& p,
                                                 const exec::MdDomain& dom);

}  // namespace lf::transform
