#include "transform/distribution.hpp"

#include "ir/sema.hpp"

namespace lf::transform {

ir::Program distribute_program(const ir::Program& p) {
    ir::Program out;
    out.name = p.name + "_distributed";
    for (const ir::LoopNest& loop : p.loops) {
        if (loop.body.size() == 1) {
            out.loops.push_back(loop);
            continue;
        }
        for (std::size_t k = 0; k < loop.body.size(); ++k) {
            ir::LoopNest split;
            split.label = loop.label + "_" + std::to_string(k);
            split.loc = loop.loc;
            split.body.push_back(loop.body[k]);
            out.loops.push_back(std::move(split));
        }
    }
    ir::validate_program(out);
    return out;
}

}  // namespace lf::transform
