#pragma once
// Loop distribution (fission), the transformation Kennedy & McKinley pair
// with fusion ("perform loop fusion ... and use loop distribution to improve
// parallelism").
//
// Under the Figure-1 model distribution is *always* legal: splitting the
// statements of one DOALL loop into consecutive single-statement DOALL loops
// only strengthens the ordering (a barrier appears where statement order
// was), and every intra-iteration forwarding (a (0,0) write-read pair inside
// one body) becomes an ordinary (0,0) loop-to-loop dependence.
//
// Distributing before fusing gives the retiming algorithms statement-level
// granularity: statements of one original loop may receive *different*
// retimings, which can only enlarge the feasible set. The dual pipeline
// distribute -> analyze -> plan_fusion is exercised by tests and the
// ablation notes in EXPERIMENTS.md.

#include "ir/ast.hpp"

namespace lf::transform {

/// Maximal distribution: one statement per loop. Labels become
/// "<label>_<k>" for multi-statement loops; single-statement loops keep
/// their label. The result is a valid Figure-1 program computing exactly
/// the same values.
[[nodiscard]] ir::Program distribute_program(const ir::Program& p);

}  // namespace lf::transform
