#include "transform/fused_program.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"

namespace lf::transform {

namespace {

template <typename Get>
std::int64_t min_over(const std::vector<FusedLoopBody>& bodies, Get get) {
    std::int64_t best = get(bodies.front());
    for (const auto& b : bodies) best = std::min(best, get(b));
    return best;
}

template <typename Get>
std::int64_t max_over(const std::vector<FusedLoopBody>& bodies, Get get) {
    std::int64_t best = get(bodies.front());
    for (const auto& b : bodies) best = std::max(best, get(b));
    return best;
}

}  // namespace

// Body u is active at p.i in [-r.x, n - r.x].
std::int64_t FusedProgram::point_i_lo() const {
    return min_over(bodies, [](const FusedLoopBody& b) { return -b.retiming.x; });
}
std::int64_t FusedProgram::point_i_hi(const Domain& dom) const {
    return max_over(bodies, [&dom](const FusedLoopBody& b) { return dom.n - b.retiming.x; });
}
std::int64_t FusedProgram::point_j_lo() const {
    return min_over(bodies, [](const FusedLoopBody& b) { return -b.retiming.y; });
}
std::int64_t FusedProgram::point_j_hi(const Domain& dom) const {
    return max_over(bodies, [&dom](const FusedLoopBody& b) { return dom.m - b.retiming.y; });
}

std::int64_t FusedProgram::main_i_lo() const {
    return max_over(bodies, [](const FusedLoopBody& b) { return -b.retiming.x; });
}
std::int64_t FusedProgram::main_i_hi(const Domain& dom) const {
    return min_over(bodies, [&dom](const FusedLoopBody& b) { return dom.n - b.retiming.x; });
}
std::int64_t FusedProgram::main_j_lo() const {
    return max_over(bodies, [](const FusedLoopBody& b) { return -b.retiming.y; });
}
std::int64_t FusedProgram::main_j_hi(const Domain& dom) const {
    return min_over(bodies, [&dom](const FusedLoopBody& b) { return dom.m - b.retiming.y; });
}

FusedProgram fuse_program(const ir::Program& p, const FusionPlan& plan) {
    check(!faultpoint::triggered("codegen.fuse"), "fuse_program: fault injected");
    check(plan.level != ParallelismLevel::Unfused,
          "fuse_program: plan is an unfused distribution fallback; use "
          "transform::distribute_program on the original program instead");
    check(static_cast<int>(p.loops.size()) == plan.retiming.num_nodes(),
          "fuse_program: plan and program disagree on loop count");
    check(plan.body_order.size() == p.loops.size(), "fuse_program: malformed plan body order");

    FusedProgram fp;
    fp.name = p.name + "_fused";
    fp.level = plan.level;
    fp.algorithm = plan.algorithm;
    fp.schedule = plan.schedule;
    fp.hyperplane = plan.hyperplane;
    for (int node : plan.body_order) {
        const auto& loop = p.loops[static_cast<std::size_t>(node)];
        FusedLoopBody body;
        body.node = node;
        body.label = loop.label;
        body.retiming = plan.retiming.of(node);
        body.statements = loop.body;
        body.body_cost = loop.body_cost();
        fp.bodies.push_back(std::move(body));
    }
    return fp;
}

}  // namespace lf::transform
