#pragma once
// The fused form of a program: one loop nest whose body concatenates the
// original loop bodies in the plan's fused body order, each offset by its
// retiming vector. Node u's instance originally at iteration q executes at
// fused point p = q - r(u); equivalently, the fused body at point p runs
// u's statements for instance q = p + r(u) (guarded by q's membership in
// the original domain -- the guards materialize the prologue/epilogue).

#include <string>
#include <vector>

#include "fusion/driver.hpp"
#include "ir/ast.hpp"
#include "support/domain.hpp"

namespace lf::transform {

struct FusedLoopBody {
    /// MLDG node / index into the original Program::loops.
    int node = 0;
    std::string label;
    /// Retiming vector r(u) of this loop.
    Vec2 retiming;
    /// The original (unshifted) statements; printing shifts them by r(u).
    std::vector<ir::Statement> statements;
    std::int64_t body_cost = 1;
};

struct FusedProgram {
    std::string name;
    /// Bodies in fused execution order (FusionPlan::body_order).
    std::vector<FusedLoopBody> bodies;
    ParallelismLevel level = ParallelismLevel::InnerDoall;
    AlgorithmUsed algorithm = AlgorithmUsed::AcyclicDoall;
    Vec2 schedule{1, 0};
    Vec2 hyperplane{0, 1};

    /// Fused-point ranges covering every original instance of every body:
    /// point p runs body u iff p + r(u) lies in `dom`.
    [[nodiscard]] std::int64_t point_i_lo() const;
    [[nodiscard]] std::int64_t point_i_hi(const Domain& dom) const;
    [[nodiscard]] std::int64_t point_j_lo() const;
    [[nodiscard]] std::int64_t point_j_hi(const Domain& dom) const;

    /// The "main" sub-ranges where *every* body is active (the steady state
    /// between prologue and epilogue).
    [[nodiscard]] std::int64_t main_i_lo() const;
    [[nodiscard]] std::int64_t main_i_hi(const Domain& dom) const;
    [[nodiscard]] std::int64_t main_j_lo() const;
    [[nodiscard]] std::int64_t main_j_hi(const Domain& dom) const;
};

/// Builds the fused program from an analyzed program and its fusion plan
/// (the plan must come from the MLDG of exactly this program: same node
/// count and order). Throws lf::Error on mismatch.
[[nodiscard]] FusedProgram fuse_program(const ir::Program& p, const FusionPlan& plan);

}  // namespace lf::transform
