#include "viz/svg.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lf::viz {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// A small qualitative palette; phases cycle through it.
const char* phase_color(std::int64_t phase) {
    static const char* kPalette[] = {"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
                                     "#76b7b2", "#edc948", "#b07aa1", "#9c755f"};
    const auto n = static_cast<std::int64_t>(std::size(kPalette));
    return kPalette[((phase % n) + n) % n];
}

std::string escape(const std::string& text) {
    std::string out;
    for (const char c : text) {
        switch (c) {
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '&': out += "&amp;"; break;
            default: out += c;
        }
    }
    return out;
}

struct Point {
    double x, y;
};

}  // namespace

std::string svg_mldg(const Mldg& g, const std::string& title) {
    const int n = std::max(g.num_nodes(), 1);
    const double radius = 90.0 + 14.0 * n;
    const double cx = radius + 60.0, cy = radius + 60.0;
    const double width = 2 * cx, height = 2 * cy + 20.0;

    std::ostringstream os;
    os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width << "\" height=\""
       << height << "\" viewBox=\"0 0 " << width << ' ' << height << "\">\n";
    os << "<defs><marker id=\"arrow\" markerWidth=\"10\" markerHeight=\"8\" refX=\"9\" "
          "refY=\"4\" orient=\"auto\"><path d=\"M0,0 L10,4 L0,8 z\" fill=\"#444\"/>"
          "</marker></defs>\n";
    os << "<text x=\"" << cx << "\" y=\"24\" text-anchor=\"middle\" font-family=\"sans-serif\" "
          "font-size=\"16\">" << escape(title) << "</text>\n";

    std::vector<Point> pos(static_cast<std::size_t>(g.num_nodes()));
    for (int v = 0; v < g.num_nodes(); ++v) {
        const double angle = 2.0 * kPi * v / n - kPi / 2.0;
        pos[static_cast<std::size_t>(v)] = {cx + radius * std::cos(angle),
                                            cy + radius * std::sin(angle)};
    }

    // Edges first (under the nodes).
    for (const auto& e : g.edges()) {
        const Point a = pos[static_cast<std::size_t>(e.from)];
        const Point b = pos[static_cast<std::size_t>(e.to)];
        std::ostringstream label;
        for (std::size_t k = 0; k < e.vectors.size(); ++k) {
            if (k) label << ' ';
            label << e.vectors[k].str();
        }
        const double stroke = e.is_hard() ? 2.6 : 1.3;
        if (e.from == e.to) {
            // Self-loop: a small circle above the node.
            os << "<circle cx=\"" << a.x << "\" cy=\"" << a.y - 34 << "\" r=\"16\" fill=\"none\" "
               << "stroke=\"#444\" stroke-width=\"" << stroke << "\"/>\n";
            os << "<text x=\"" << a.x << "\" y=\"" << a.y - 56
               << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"11\">"
               << escape(label.str()) << (e.is_hard() ? " *" : "") << "</text>\n";
            continue;
        }
        // Shorten the line so the arrowhead stops at the node circle.
        const double dx = b.x - a.x, dy = b.y - a.y;
        const double len = std::max(1.0, std::hypot(dx, dy));
        const double ux = dx / len, uy = dy / len;
        const double x1 = a.x + ux * 22, y1 = a.y + uy * 22;
        const double x2 = b.x - ux * 24, y2 = b.y - uy * 24;
        // Offset the line perpendicular so opposite edges do not overlap.
        const double px = -uy * 7, py = ux * 7;
        os << "<line x1=\"" << x1 + px << "\" y1=\"" << y1 + py << "\" x2=\"" << x2 + px
           << "\" y2=\"" << y2 + py << "\" stroke=\"#444\" stroke-width=\"" << stroke
           << "\" marker-end=\"url(#arrow)\"/>\n";
        os << "<text x=\"" << (x1 + x2) / 2 + px * 2.6 << "\" y=\"" << (y1 + y2) / 2 + py * 2.6
           << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"11\">"
           << escape(label.str()) << (e.is_hard() ? " *" : "") << "</text>\n";
    }

    for (int v = 0; v < g.num_nodes(); ++v) {
        const Point a = pos[static_cast<std::size_t>(v)];
        os << "<circle cx=\"" << a.x << "\" cy=\"" << a.y
           << "\" r=\"20\" fill=\"#eef3fb\" stroke=\"#2f4b7c\" stroke-width=\"1.5\"/>\n";
        os << "<text x=\"" << a.x << "\" y=\"" << a.y + 5
           << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"13\">"
           << escape(g.node(v).name) << "</text>\n";
    }
    os << "</svg>\n";
    return os.str();
}

std::string svg_iteration_space(const Mldg& retimed, const Vec2& schedule, int rows, int cols,
                                const std::string& title) {
    const double cell = 46.0, margin = 60.0;
    const double width = margin * 2 + cell * cols;
    const double height = margin * 2 + cell * rows + 30.0;

    // Normalize phases within the window so colors start at 0.
    std::int64_t tmin = 0;
    for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < cols; ++j) {
            tmin = std::min(tmin, schedule.x * i + schedule.y * j);
        }
    }

    auto point_x = [&](std::int64_t j) { return margin + cell * (static_cast<double>(j) + 0.5); };
    // i grows upward, as the paper draws it.
    auto point_y = [&](std::int64_t i) {
        return height - 30.0 - margin - cell * (static_cast<double>(i) + 0.5);
    };

    std::ostringstream os;
    os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width << "\" height=\""
       << height << "\" viewBox=\"0 0 " << width << ' ' << height << "\">\n";
    os << "<defs><marker id=\"darrow\" markerWidth=\"10\" markerHeight=\"8\" refX=\"9\" "
          "refY=\"4\" orient=\"auto\"><path d=\"M0,0 L10,4 L0,8 z\" fill=\"#c1272d\"/>"
          "</marker></defs>\n";
    os << "<text x=\"" << width / 2 << "\" y=\"22\" text-anchor=\"middle\" "
          "font-family=\"sans-serif\" font-size=\"15\">" << escape(title) << "</text>\n";

    for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) {
            const std::int64_t t = schedule.x * i + schedule.y * j - tmin;
            os << "<circle cx=\"" << point_x(j) << "\" cy=\"" << point_y(i)
               << "\" r=\"13\" fill=\"" << phase_color(t) << "\"/>\n";
            os << "<text x=\"" << point_x(j) << "\" y=\"" << point_y(i) + 4
               << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"10\" "
                  "fill=\"white\">" << t << "</text>\n";
        }
    }

    // Dependence arrows out of a central sample point.
    const std::int64_t ci = rows / 2, cj = cols / 2;
    for (const auto& e : retimed.edges()) {
        for (const Vec2& d : e.vectors) {
            if (d.is_zero()) continue;
            const std::int64_t ti = ci + d.x, tj = cj + d.y;
            if (ti < 0 || ti >= rows || tj < 0 || tj >= cols) continue;
            os << "<line x1=\"" << point_x(cj) << "\" y1=\"" << point_y(ci) << "\" x2=\""
               << point_x(tj) << "\" y2=\"" << point_y(ti)
               << "\" stroke=\"#c1272d\" stroke-width=\"1.6\" marker-end=\"url(#darrow)\"/>\n";
        }
    }

    os << "<text x=\"" << margin << "\" y=\"" << height - 8
       << "\" font-family=\"sans-serif\" font-size=\"12\">numbers = parallel phase t = "
       << schedule.x << "*i + " << schedule.y
       << "*j (equal phase = concurrent); arrows = retimed dependences</text>\n";
    os << "</svg>\n";
    return os.str();
}

}  // namespace lf::viz
