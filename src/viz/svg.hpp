#pragma once
// SVG renderings of the paper's two figure families:
//   * dependence graphs (Figures 2/8/14 style): nodes on a circle, edges
//     labelled with their dependence-vector sets, hard edges drawn bold;
//   * iteration spaces (Figures 7/13/16 style): a grid of points coloured
//     by parallel phase t = s . p, with the retimed dependence vectors drawn
//     as arrows out of a central sample point.
//
// Output is self-contained SVG (no external fonts/scripts), deterministic,
// and viewable in any browser -- handy for READMEs and for eyeballing plans.

#include <string>

#include "ldg/mldg.hpp"

namespace lf::viz {

/// Dependence-graph figure.
[[nodiscard]] std::string svg_mldg(const Mldg& g, const std::string& title);

/// Iteration-space figure for a *retimed* graph under `schedule`: rows x
/// cols points, phase-coloured; dependence arrows drawn from a centre point.
[[nodiscard]] std::string svg_iteration_space(const Mldg& retimed, const Vec2& schedule,
                                              int rows, int cols, const std::string& title);

}  // namespace lf::viz
