#include "workloads/extra.hpp"

namespace lf::workloads {

const std::vector<ExtraWorkload>& extra_workloads() {
    static const std::vector<ExtraWorkload> kExtras = {
        {"smooth3", "three-stage smoothing chain (acyclic, hard edges)",
         R"(
program smooth3 {
  loop S1 {
    t1[i][j] = x[i][j-1] + x[i][j+1];
  }
  loop S2 {
    t2[i][j] = t1[i][j-2] + t1[i][j+2];
  }
  loop S3 {
    y[i][j] = t2[i][j-1] - t2[i][j+1];
  }
}
)",
         "alg3"},
        {"pipeline5", "five-stage forwarding pipeline with feedback",
         R"(
program pipeline5 {
  loop P1 {
    a1[i][j] = x[i][j] + 0.1 * a5[i-2][j];
  }
  loop P2 {
    a2[i][j] = 0.9 * a1[i][j+1];
  }
  loop P3 {
    a3[i][j] = 0.9 * a2[i][j+1];
  }
  loop P4 {
    a4[i][j] = 0.9 * a3[i][j+1];
  }
  loop P5 {
    a5[i][j] = 0.9 * a4[i][j+1];
  }
}
)",
         "alg4"},
        {"hydro", "Livermore-flavoured flux/update pair (tight cycle)",
         R"(
program hydro {
  loop Flux {
    f[i][j] = q[i-1][j+1] - q[i-1][j-1];
  }
  loop Update {
    q[i][j] = q[i-1][j] + 0.5 * f[i][j-1] - 0.5 * f[i][j+1];
  }
}
)",
         "alg5"},
        {"relax2", "forward/backward relaxation pair with two-step feedback",
         R"(
program relax2 {
  loop Fwd {
    a[i][j] = 0.5 * (b[i-2][j-1] + b[i-2][j+1]);
  }
  loop Bwd {
    b[i][j] = 0.5 * (a[i][j-1] + a[i][j+1]) + 0.1 * b[i-1][j];
  }
}
)",
         "alg4"},
    };
    return kExtras;
}

}  // namespace lf::workloads
