#pragma once
// Extended workload collection beyond the paper's Section-5 set: classic
// loop-fusion kernel shapes from the literature the paper situates itself
// in, each chosen to exercise one algorithm path distinctly. All are
// executable DSL programs (parse + analyze + fuse + verify end-to-end).

#include <string>
#include <vector>

#include "ldg/mldg.hpp"

namespace lf::workloads {

struct ExtraWorkload {
    std::string id;
    std::string title;
    std::string dsl_source;
    /// Expected driver outcome ("alg3" | "alg4" | "alg5"), asserted in tests.
    std::string expected_path;
};

/// The extended set:
///   smooth3   -- acyclic three-stage smoothing chain, fusion-preventing
///                hard edges at every stage (Algorithm 3).
///   pipeline5 -- five-stage pipeline with single-vector (0,-1) forwarding
///                and a two-iteration feedback: Algorithm 4 succeeds with a
///                pure inner alignment found by phase 2.
///   hydro     -- Livermore-flavoured flux/update pair whose cycle carries
///                two hard edges over x-weight 1: Algorithm 5 (hyperplane).
///   redblack  -- red/black relaxation written as two half-sweeps with a
///                carried cycle (Algorithm 4).
[[nodiscard]] const std::vector<ExtraWorkload>& extra_workloads();

}  // namespace lf::workloads
