#include "workloads/gallery.hpp"

#include "workloads/sources.hpp"

namespace lf::workloads {

Mldg fig2_graph() {
    Mldg g;
    const int a = g.add_node("A", 2);
    const int b = g.add_node("B", 3);
    const int c = g.add_node("C", 6);
    const int d = g.add_node("D", 2);
    g.add_edge(a, b, {{1, 1}, {2, 1}});
    g.add_edge(b, c, {{0, -2}, {0, 1}});  // hard
    g.add_edge(c, d, {{0, -1}});
    g.add_edge(a, c, {{0, 1}});
    g.add_edge(d, a, {{2, 1}});
    g.add_edge(c, c, {{1, 0}});
    return g;
}

Mldg fig8_graph() {
    Mldg g;
    const int a = g.add_node("A", 2);
    const int b = g.add_node("B", 2);
    const int c = g.add_node("C", 3);
    const int d = g.add_node("D", 4);
    const int e = g.add_node("E", 3);
    const int f = g.add_node("F", 2);
    const int h = g.add_node("G", 2);
    g.add_edge(a, b, {{0, 1}});
    g.add_edge(b, c, {{0, -2}, {0, 3}});  // hard
    g.add_edge(c, d, {{1, 3}});
    g.add_edge(d, e, {{2, -2}});
    g.add_edge(b, f, {{0, -2}});
    g.add_edge(f, h, {{1, 2}});
    g.add_edge(b, e, {{1, 2}});
    g.add_edge(a, d, {{0, -3}, {0, -1}});  // hard
    return g;
}

namespace {

Mldg fig14_base(Vec2 e_to_b_first) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    const int d = g.add_node("D");
    const int e = g.add_node("E");
    const int f = g.add_node("F");
    const int h = g.add_node("G");
    // Figure 8, altered per Section 4.4: add D->C and E->B, redefine C->D,
    // D->E and A->D.
    g.add_edge(a, b, {{0, 1}});
    g.add_edge(b, c, {{0, -2}, {0, 3}});  // hard
    g.add_edge(c, d, {{0, 3}, {0, 5}});   // hard
    g.add_edge(d, e, {{0, -2}});
    g.add_edge(b, f, {{0, -2}});
    g.add_edge(f, h, {{1, 2}});
    g.add_edge(b, e, {{1, 2}});
    g.add_edge(a, d, {{0, -3}, {1, 0}});
    g.add_edge(d, c, {{0, -2}});
    g.add_edge(e, b, {e_to_b_first, {1, 1}});
    return g;
}

}  // namespace

Mldg fig14_graph_as_printed() { return fig14_base({0, 1}); }

Mldg fig14_graph() { return fig14_base({0, 2}); }

Mldg jacobi_pair_graph() {
    Mldg g;
    const int s = g.add_node("S", 5);  // smoothing stencil
    const int u = g.add_node("U", 4);  // update
    // S: t[i][j] = 0.25*(u[i-2][j-1] + u[i-2][j+1] + u[i-2][j] + t[i-1][j])
    // U: u[i][j] = t[i][j] + 0.5*(t[i][j-1] - t[i][j+1])
    g.add_edge(s, u, {{0, -1}, {0, 0}, {0, 1}});  // hard + fusion-preventing
    g.add_edge(u, s, {{2, -1}, {2, 0}, {2, 1}});  // hard, carried twice
    g.add_edge(s, s, {{1, 0}});
    return g;
}

Mldg iir_chain_graph() {
    Mldg g;
    const int f1 = g.add_node("F1", 5);
    const int f2 = g.add_node("F2", 5);
    const int f3 = g.add_node("F3", 3);
    const int f4 = g.add_node("F4", 4);
    // F1: y1[i][j] = x[i][j] + a*y1[i-1][j-1] + b*y1[i-1][j+1]
    // F2: y2[i][j] = y1[i][j-2] + y1[i][j+2] + c*y3[i-1][j-2] + d*y3[i-1][j]
    // F3: y3[i][j] = y2[i][j-1] + y2[i][j+3]
    // F4: y4[i][j] = y3[i][j+1] - y3[i][j-3] + 2*x[i][j]; F1 reads y4[i-3][j-1]
    g.add_edge(f1, f1, {{1, -1}, {1, 1}});        // hard self
    g.add_edge(f1, f2, {{0, -2}, {0, 2}});        // hard
    g.add_edge(f2, f3, {{0, -3}, {0, 1}});        // hard
    g.add_edge(f3, f2, {{1, 0}, {1, 2}});         // hard, backward
    g.add_edge(f3, f4, {{0, -1}, {0, 3}});        // hard
    g.add_edge(f4, f1, {{3, 1}});
    return g;
}

const std::vector<Workload>& paper_workloads() {
    static const std::vector<Workload> kWorkloads = [] {
        std::vector<Workload> w;
        w.push_back({"fig8", "Example 1: acyclic 2LDG (paper Fig. 8)", fig8_graph(),
                     std::string(sources::kFig8)});
        w.push_back({"fig2", "Example 2: cyclic 2LDG (paper Fig. 2)", fig2_graph(),
                     std::string(sources::kFig2)});
        w.push_back({"fig14", "Example 3: cyclic 2LDG, hyperplane only (paper Fig. 14)",
                     fig14_graph(), ""});
        w.push_back({"jacobi", "Example 4: Jacobi-style relaxation pair", jacobi_pair_graph(),
                     std::string(sources::kJacobiPair)});
        w.push_back({"iir", "Example 5: 2-D IIR filter cascade", iir_chain_graph(),
                     std::string(sources::kIirChain)});
        return w;
    }();
    return kWorkloads;
}

}  // namespace lf::workloads
