#pragma once
// The experiment workloads: the paper's own example 2LDGs (Figures 2, 8, 14)
// plus the two reconstructed "common MLDG" benchmarks used by Section 5
// (see DESIGN.md, "Experiment reconstruction").

#include <string>
#include <vector>

#include "ldg/mldg.hpp"

namespace lf::workloads {

/// Figure 2: the running example. Cyclic; Algorithm 4 succeeds (Figure 12
/// reports r(A)=r(B)=(0,0), r(C)=(-1,0), r(D)=(-1,-1)).
[[nodiscard]] Mldg fig2_graph();

/// Figure 8: the acyclic example of Section 4.2. Algorithm 3 reports
/// r = {A:0, B:-1, C:-2, D:-2, E:-1, F:-2, G:-2} in x (Figure 10).
[[nodiscard]] Mldg fig8_graph();

/// Figure 14 *as printed in the paper*: contains the zero-weight cycle
/// B->C->D->E->B (sum (0,0)), which violates the hypothesis of Theorem 4.4
/// (all cycles > (0,0)) -- no execution order exists for it. Kept for the
/// regression test that documents the discrepancy.
[[nodiscard]] Mldg fig14_graph_as_printed();

/// Figure 14 with the minimal correction D_L(E,B) = {(0,2),(1,1)} (instead
/// of {(0,1),(1,1)}), which restores Theorem 4.4's hypothesis while keeping
/// the example's character: Algorithm 4 fails in phase 1 and full
/// parallelism is only achievable on a skewed hyperplane.
[[nodiscard]] Mldg fig14_graph();

/// Reconstructed Example 4, "jacobi-pair": a two-loop Jacobi-style
/// relaxation (smooth + update with a two-iteration feedback), in the style
/// of the fusion candidates of Manjikian & Abdelrahman. Cyclic with hard
/// edges on both directions of the cycle; naive fusion is illegal, yet
/// Algorithm 4 fuses it into a fully parallel innermost loop.
[[nodiscard]] Mldg jacobi_pair_graph();

/// Reconstructed Example 5, "iir-chain": a four-stage 2-D IIR-style filter
/// cascade in the style of Passos & Sha's multi-dimensional retiming
/// benchmarks. Two hard edges share a cycle of x-weight 1, so Algorithm 4
/// is infeasible (phase 1) and Algorithm 5's hyperplane schedule is needed.
[[nodiscard]] Mldg iir_chain_graph();

struct Workload {
    std::string id;
    std::string title;
    Mldg graph;
    /// DSL source of the equivalent program; empty for graph-only workloads
    /// (Figure 14 has no executable Figure-1 program: its backward zero-x
    /// edges make the original loop sequence unexecutable -- it is a
    /// dataflow specification, cf. the paper's remark that the resulting
    /// code "requires a detailed description beyond the scope of this paper").
    std::string dsl_source;
};

/// The five MLDGs of the Section 5 experiments, in paper order
/// (Example1 = fig8, Example2 = fig2, Example3 = fig14, then the two
/// reconstructed workloads).
[[nodiscard]] const std::vector<Workload>& paper_workloads();

}  // namespace lf::workloads
