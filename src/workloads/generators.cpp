#include "workloads/generators.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "ir/sema.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"

namespace lf::workloads {

namespace {

std::vector<Vec2> random_vectors(Rng& rng, const RandomGraphOptions& o,
                                 std::int64_t min_x) {
    const int count = static_cast<int>(rng.uniform(1, o.max_vectors_per_edge));
    std::vector<Vec2> vs;
    vs.reserve(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
        vs.push_back(Vec2{rng.uniform(min_x, o.max_component),
                          rng.uniform(-o.max_component, o.max_component)});
    }
    return vs;
}

Mldg random_mldg_impl(Rng& rng, const RandomGraphOptions& o, bool allow_zero_x_backward) {
    Mldg g;
    for (int v = 0; v < o.num_nodes; ++v) {
        g.add_node("L" + std::to_string(v), rng.uniform(1, 4));
    }
    for (int u = 0; u < o.num_nodes; ++u) {
        for (int v = u + 1; v < o.num_nodes; ++v) {
            if (rng.flip(o.forward_edge_prob)) {
                g.add_edge(u, v, random_vectors(rng, o, /*min_x=*/0));
            }
            if (rng.flip(o.backward_edge_prob)) {
                if (allow_zero_x_backward && rng.flip(0.5)) {
                    // Zero-x backward dependences must have positive y or the
                    // graph risks a <= (0,0) cycle; the caller still verifies.
                    std::vector<Vec2> vs = random_vectors(rng, o, /*min_x=*/0);
                    for (Vec2& d : vs) {
                        if (d.x == 0) d.y = std::max<std::int64_t>(1, std::abs(d.y));
                    }
                    g.add_edge(v, u, std::move(vs));
                } else {
                    g.add_edge(v, u, random_vectors(rng, o, /*min_x=*/1));
                }
            }
        }
        if (rng.flip(o.self_edge_prob)) {
            g.add_edge(u, u, random_vectors(rng, o, /*min_x=*/1));
        }
    }
    return g;
}

}  // namespace

Mldg random_legal_mldg(Rng& rng, const RandomGraphOptions& options) {
    Mldg g = random_mldg_impl(rng, options, /*allow_zero_x_backward=*/false);
    check(is_legal_mldg(g), "random_legal_mldg: construction invariant violated");
    return g;
}

ir::Program random_program(Rng& rng, const RandomProgramOptions& o) {
    ir::Program p;
    p.name = "random";

    // Array name pools: the main per-loop arrays plus an unwritten input.
    std::vector<std::string> readable{"input"};
    std::vector<std::vector<std::string>> written_by(static_cast<std::size_t>(o.num_loops));

    for (int k = 0; k < o.num_loops; ++k) {
        written_by[static_cast<std::size_t>(k)].push_back("v" + std::to_string(k));
    }

    auto make_read = [&](int loop) {
        // Pick any readable array or any loop's array; same-loop targets get
        // an outer-iteration setback to preserve the DOALL property.
        std::string array;
        bool own = false;
        const std::int64_t pick = rng.uniform(0, o.num_loops);  // num_loops => "input"
        if (pick == o.num_loops) {
            array = "input";
        } else {
            const auto& pool = written_by[static_cast<std::size_t>(pick)];
            array = pool[static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
            own = pick == loop;
        }
        ir::ArrayRef ref;
        ref.array = array;
        ref.offset.x = own ? -rng.uniform(1, o.max_offset) : -rng.uniform(-1, o.max_offset);
        ref.offset.y = rng.uniform(-o.max_offset, o.max_offset);
        return std::make_unique<ir::ReadExpr>(std::move(ref));
    };

    for (int k = 0; k < o.num_loops; ++k) {
        ir::LoopNest loop;
        loop.label = "L" + std::to_string(k);
        const int num_statements = static_cast<int>(rng.uniform(1, o.max_statements_per_loop));
        for (int s = 0; s < num_statements; ++s) {
            ir::ArrayRef target;
            if (s == 0) {
                target.array = "v" + std::to_string(k);
            } else {
                target.array = "w" + std::to_string(k) + "_" + std::to_string(s);
                written_by[static_cast<std::size_t>(k)].push_back(target.array);
            }
            target.offset = Vec2{0, 0};

            const int num_reads = static_cast<int>(rng.uniform(1, o.max_reads_per_statement));
            ir::ExprPtr expr = make_read(k);
            for (int r = 1; r < num_reads; ++r) {
                const char op = "+-*"[rng.uniform(0, 2)];
                expr = std::make_unique<ir::BinaryExpr>(op, std::move(expr), make_read(k));
            }
            // Scale down so iterated products stay finite.
            expr = std::make_unique<ir::BinaryExpr>(
                '*', std::move(expr), std::make_unique<ir::LiteralExpr>(0.25));
            loop.body.emplace_back(std::move(target), std::move(expr));
        }
        if (rng.flip(o.shared_writer_prob)) {
            // A write-only shared array: loops writing "sh" at different
            // offsets produce output dependences between them. One access
            // per loop, so no within-loop DOALL conflict can arise.
            ir::ArrayRef target;
            target.array = "sh";
            target.offset = Vec2{rng.uniform(0, 2), rng.uniform(-2, 2)};
            loop.body.emplace_back(std::move(target),
                                   std::make_unique<ir::LiteralExpr>(
                                       static_cast<double>(k) + 0.5));
        }
        p.loops.push_back(std::move(loop));
    }
    ir::validate_program(p);
    return p;
}

Mldg random_schedulable_mldg(Rng& rng, const RandomGraphOptions& options) {
    // Rejection sampling: zero-x backward edges can still combine into a
    // <= (0,0) cycle; retry until the instance is schedulable. Acceptance is
    // high in practice because zero-x vectors are forced to positive y.
    for (int attempt = 0; attempt < 1000; ++attempt) {
        Mldg g = random_mldg_impl(rng, options, /*allow_zero_x_backward=*/true);
        if (is_schedulable(g)) return g;
    }
    throw Error("random_schedulable_mldg: rejection sampling failed (options too adversarial)");
}

}  // namespace lf::workloads
