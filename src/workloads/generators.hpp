#pragma once
// Random-instance generators for property tests and scaling benchmarks.

#include "ir/ast.hpp"
#include "ldg/mldg.hpp"
#include "support/rng.hpp"

namespace lf::workloads {

struct RandomGraphOptions {
    int num_nodes = 8;
    /// Probability of a forward edge between any ordered pair u < v.
    double forward_edge_prob = 0.35;
    /// Probability of a backward (outer-loop-carried) edge v -> u, u < v.
    double backward_edge_prob = 0.15;
    /// Probability of a self-edge.
    double self_edge_prob = 0.2;
    /// Max dependence vectors per edge.
    int max_vectors_per_edge = 3;
    /// Dependence-vector component magnitude bound.
    std::int64_t max_component = 5;
};

/// Generates a *program-model legal* 2LDG (L1-L3 of ldg/legality.hpp) by
/// construction: forward edges may carry x >= 0 vectors, backward and self
/// edges only x >= 1 vectors. Every cycle then contains a backward or self
/// edge, so cycle x-weights are >= 1.
[[nodiscard]] Mldg random_legal_mldg(Rng& rng, const RandomGraphOptions& options = {});

/// Generates a merely *schedulable* 2LDG: like random_legal_mldg but backward
/// edges may carry zero-x vectors with positive y (kept small), which makes
/// instances that only Algorithm 5 can parallelize much more likely. The
/// result is schedulability-checked and regenerated until valid.
[[nodiscard]] Mldg random_schedulable_mldg(Rng& rng, const RandomGraphOptions& options = {});

struct RandomProgramOptions {
    int num_loops = 5;
    int max_statements_per_loop = 2;
    int max_reads_per_statement = 3;
    std::int64_t max_offset = 3;
    /// Probability that a loop additionally writes the shared array "sh"
    /// (never read), creating output dependences between loops.
    double shared_writer_prob = 0.25;
};

/// Generates a random, always-valid Figure-1 program: loop k writes array
/// "v<k>" (second statements write "w<k>"), statements read random arrays at
/// random constant offsets. Reads of arrays written by the *same* loop are
/// forced at least one outer iteration back (the DOALL requirement); every
/// other read is unrestricted -- any resulting cross-loop dependence (flow,
/// anti or output) is legal under the model.
[[nodiscard]] ir::Program random_program(Rng& rng, const RandomProgramOptions& options = {});

}  // namespace lf::workloads
