#pragma once
// DSL sources for the executable workloads. Each source, run through the
// dependence analyzer, reproduces exactly the corresponding gallery graph
// (asserted by tests/test_workloads.cpp).

#include <string_view>

namespace lf::workloads::sources {

/// Paper Figure 2(b), verbatim.
inline constexpr std::string_view kFig2 = R"(
# Paper Figure 2(b): the running example.
program fig2 {
  loop A {
    a[i][j] = e[i-2][j-1];
  }
  loop B {
    b[i][j] = a[i-1][j-1] + a[i-2][j-1];
  }
  loop C {
    c[i][j] = b[i][j+2] - a[i][j-1] + b[i][j-1];
    d[i][j] = c[i-1][j];
  }
  loop D {
    e[i][j] = c[i][j+1];
  }
}
)";

/// A program realizing the acyclic 2LDG of paper Figure 8: each loop writes
/// its own array; reads are placed so the flow-dependence vectors match the
/// figure exactly (vK reads arrU[i-dx][j-dy] yield vectors (dx,dy)).
inline constexpr std::string_view kFig8 = R"(
# Synthesized program whose dependence graph is paper Figure 8.
program fig8 {
  loop A {
    va[i][j] = x[i][j] + 1.0;
  }
  loop B {
    vb[i][j] = va[i][j-1] * 0.5;
  }
  loop C {
    vc[i][j] = vb[i][j+2] + vb[i][j-3];
  }
  loop D {
    vd[i][j] = vc[i-1][j-3] + va[i][j+3] - va[i][j+1];
  }
  loop E {
    ve[i][j] = vd[i-2][j+2] + vb[i-1][j-2];
  }
  loop F {
    vf[i][j] = vb[i][j+2] * 2.0;
  }
  loop G {
    vg[i][j] = vf[i-1][j-2];
  }
}
)";

/// Example 4: Jacobi-style smooth/update pair with a two-outer-iteration
/// feedback. Direct fusion is illegal (S -> U carries (0,-1)).
inline constexpr std::string_view kJacobiPair = R"(
# Jacobi-style relaxation: smoothing stencil + update with feedback.
program jacobi {
  loop S {
    t[i][j] = 0.25 * (u[i-2][j-1] + u[i-2][j+1] + u[i-2][j] + t[i-1][j]);
  }
  loop U {
    u[i][j] = t[i][j] + 0.5 * (t[i][j-1] - t[i][j+1]);
  }
}
)";

/// Example 5: four-stage 2-D IIR-style filter cascade. Two hard edges share
/// the cycle F2 -> F3 -> F2 (x-weight 1), defeating Algorithm 4.
inline constexpr std::string_view kIirChain = R"(
# Four-stage 2-D IIR filter cascade.
program iir {
  loop F1 {
    y1[i][j] = x[i][j] + 0.9 * y1[i-1][j-1] + 0.1 * y1[i-1][j+1]
             + 0.01 * y4[i-3][j-1];
  }
  loop F2 {
    y2[i][j] = y1[i][j-2] + y1[i][j+2] + 0.5 * y3[i-1][j-2] + 0.25 * y3[i-1][j];
  }
  loop F3 {
    y3[i][j] = y2[i][j-1] + y2[i][j+3];
  }
  loop F4 {
    y4[i][j] = y3[i][j+1] - y3[i][j-3] + 2.0 * x[i][j];
  }
}
)";

/// Depth-3 volume pipeline (time x plane x column): a cyclic three-loop
/// chain with a hard backward edge, exercising the N-D planner end to end.
inline constexpr std::string_view kVolume3d = R"(
# 3-D volume pipeline: time (i1) x plane (i2) x column (j).
program volume dim 3 {
  loop Smooth {
    s[i1][i2][j] = 0.25 * (v[i1-1][i2][j-1] + v[i1-1][i2][j+1])
                 + 0.5 * s[i1-1][i2+1][j];
  }
  loop Gradient {
    g[i1][i2][j] = s[i1][i2][j-1] - s[i1][i2][j+1];
  }
  loop Volume {
    v[i1][i2][j] = g[i1][i2-1][j-2] + g[i1][i2-1][j+2] + 0.1 * v[i1-1][i2][j];
  }
}
)";

/// Depth-4 pipeline with a self-feedback on the first loop; small extents
/// keep the replay cheap.
inline constexpr std::string_view kHyper4d = R"(
# 4-D pipeline with a first-loop feedback.
program hyper dim 4 {
  loop A { a[i1][i2][i3][j] = x[i1][i2][i3][j] + 0.5 * a[i1-1][i2][i3+1][j-1]; }
  loop B { b[i1][i2][i3][j] = a[i1][i2][i3][j-1] + a[i1][i2][i3][j+1]; }
  loop C { c[i1][i2][i3][j] = b[i1][i2-1][i3][j+2] - a[i1][i2][i3-1][j]; }
}
)";

}  // namespace lf::workloads::sources
