// Tests for the ablation variants, the communication model and the
// shift-and-peel time estimate.

#include <gtest/gtest.h>

#include "baselines/shift_and_peel.hpp"
#include "fusion/ablation.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/driver.hpp"
#include "fusion/llofra.hpp"
#include "ldg/legality.hpp"
#include "sim/communication.hpp"
#include "sim/machine.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"

namespace lf {
namespace {

TEST(AblationAllHard, FailsOnFig2ItselfWhereThePaperSucceeds) {
    // fig2's cycle A->B->C->D->A has x-weight 3 spread over 4 edges:
    // forcing every edge outer-carried is infeasible, while the paper's
    // selective phase 1 (only B->C is hard) succeeds.
    const Mldg g = workloads::fig2_graph();
    EXPECT_TRUE(cyclic_doall_fusion(g).retiming.has_value());
    EXPECT_FALSE(ablation::cyclic_doall_all_hard(g).has_value());
}

TEST(AblationAllHard, PaysDeeperProloguesWhenItDoesSucceed) {
    // A chain of alignable same-iteration dependences closed by a carried
    // edge: the paper's variant retimes nothing in x (phase 2 aligns in y),
    // the all-hard variant shifts every stage one outer iteration deeper.
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    const int d = g.add_node("D");
    g.add_edge(a, b, {{0, 2}});
    g.add_edge(b, c, {{0, 3}});
    g.add_edge(c, d, {{0, 1}});
    g.add_edge(d, a, {{4, 0}});
    const auto paper = cyclic_doall_fusion(g);
    const auto allhard = ablation::cyclic_doall_all_hard(g);
    ASSERT_TRUE(paper.retiming.has_value());
    ASSERT_TRUE(allhard.has_value());
    EXPECT_TRUE(is_fused_inner_doall(paper.retiming->apply(g)));
    EXPECT_TRUE(is_fused_inner_doall(allhard->apply(g)));
    EXPECT_EQ(ablation::prologue_rows(*paper.retiming), 0);
    EXPECT_EQ(ablation::prologue_rows(*allhard), 3);
}

TEST(AblationAllHard, FailsWhereSelectiveSucceeds) {
    // A cycle with x-weight 1 and no hard edges: selective phase 1 passes
    // (nothing forced), all-hard cannot (needs x-weight >= 2).
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{0, 2}});
    g.add_edge(b, a, {{1, 0}});
    EXPECT_TRUE(cyclic_doall_fusion(g).retiming.has_value());
    EXPECT_FALSE(ablation::cyclic_doall_all_hard(g).has_value());
}

TEST(AblationAllHard, VariantsAreIncomparable) {
    // All-hard tightens phase 1 but skips phase 2's equality constraints;
    // the two variants are incomparable. Here all-hard succeeds while the
    // paper's variant fails phase 2 (inconsistent y-alignments over two
    // zero-x paths A->C and A->B->C).
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    g.add_edge(a, c, {{0, 1}});
    g.add_edge(a, b, {{0, 1}});
    g.add_edge(b, c, {{0, 1}});
    g.add_edge(c, a, {{3, 0}});
    const auto paper = cyclic_doall_fusion(g);
    EXPECT_FALSE(paper.retiming.has_value());
    EXPECT_EQ(paper.failed_phase, 2);
    const auto allhard = ablation::cyclic_doall_all_hard(g);
    ASSERT_TRUE(allhard.has_value());
    EXPECT_TRUE(is_fused_inner_doall(allhard->apply(g)));
}

TEST(AblationKeepY, ZeroingRemovesAllInnerPeels) {
    const Mldg g = workloads::fig8_graph();
    const Retiming zeroed = acyclic_doall_fusion(g);
    const Retiming kept = ablation::acyclic_doall_keep_y(g);
    EXPECT_EQ(ablation::inner_peels(zeroed), 0);
    // Both reach DOALL; the unzeroed variant drags inner shifts along.
    EXPECT_TRUE(is_fused_inner_doall(zeroed.apply(g)));
    EXPECT_TRUE(is_fused_inner_doall(kept.apply(g)));
    EXPECT_EQ(ablation::prologue_rows(zeroed), ablation::prologue_rows(kept));
}

TEST(AblationSpreadMetrics, MatchHandComputedValues) {
    Retiming r(std::vector<Vec2>{{0, 0}, {-2, 3}, {1, -1}});
    EXPECT_EQ(ablation::prologue_rows(r), 3);  // x spread: -2 .. 1
    EXPECT_EQ(ablation::inner_peels(r), 4);    // y spread: -1 .. 3
}

TEST(AblationBodyReorder, DetectsBackwardZeroDependences) {
    Mldg fine;
    const int a1 = fine.add_node("A");
    const int b1 = fine.add_node("B");
    fine.add_edge(a1, b1, {{0, 0}});
    EXPECT_FALSE(ablation::program_order_body_would_be_wrong(fine));

    Mldg wrong;
    const int a2 = wrong.add_node("A");
    const int b2 = wrong.add_node("B");
    wrong.add_edge(b2, a2, {{0, 0}});
    EXPECT_TRUE(ablation::program_order_body_would_be_wrong(wrong));
}

TEST(AblationBodyReorder, Fig14NeedsReordering) {
    const Mldg g = workloads::fig14_graph();
    const Mldg gr = llofra(g).apply(g);
    EXPECT_TRUE(ablation::program_order_body_would_be_wrong(gr));
}

TEST(Communication, FusionDividesMessagesKeepsVolumeOnCarriedDeps) {
    const Mldg g = workloads::jacobi_pair_graph();
    const FusionPlan plan = plan_fusion(g);
    const Domain dom{100, 1000};
    const auto orig = sim::estimate_communication_original(g, dom, 8);
    const auto fused = sim::estimate_communication_fused(g, plan, dom, 8);
    EXPECT_GT(orig.messages, fused.messages);
    EXPECT_EQ(fused.messages, 7);  // one per boundary
    // jacobi's inner distances are all +-1 before and after retiming.
    EXPECT_EQ(orig.volume, fused.volume);
    EXPECT_GT(orig.volume, 0);
}

TEST(Communication, SingleProcessorCommunicatesNothing) {
    const Mldg g = workloads::fig2_graph();
    const FusionPlan plan = plan_fusion(g);
    const Domain dom{10, 10};
    EXPECT_EQ(sim::estimate_communication_original(g, dom, 1).volume, 0);
    EXPECT_EQ(sim::estimate_communication_fused(g, plan, dom, 1).messages, 0);
}

TEST(Communication, CrossingIsClampedToBlockWidth) {
    // A dependence spanning more than a block cannot cross more than the
    // block's worth of elements per boundary.
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{1, 100}});
    const Domain dom{10, 15};  // 16 columns, P=4 -> block 4
    const auto est = sim::estimate_communication_original(g, dom, 4);
    EXPECT_EQ(est.volume, 3 * 4);  // 3 boundaries x clamped 4
}

TEST(ShiftAndPeelEstimate, SerialPeelTermGrowsRelativeShare) {
    const Mldg g = workloads::fig2_graph();
    const auto sp = baselines::shift_and_peel_fusion(g);
    ASSERT_TRUE(sp.feasible);
    const FusionPlan plan = plan_fusion(g);
    const sim::MachineConfig machine{16, 200};
    double last_ratio = 0.0;
    for (const std::int64_t m : {4096LL, 256LL, 16LL}) {
        const Domain dom{100, m};
        const auto sp_est = sim::estimate_shift_and_peel(g, sp.peel, dom, machine);
        const auto ours = sim::estimate_fused(g, plan, dom, machine);
        const double ratio = ours.speedup_over(sp_est);
        EXPECT_GE(ratio, 1.0) << "m=" << m;
        EXPECT_GT(ratio, last_ratio) << "m=" << m;
        last_ratio = ratio;
    }
}

TEST(ShiftAndPeelEstimate, NoPeelPenaltyOnOneProcessor) {
    const Mldg g = workloads::fig2_graph();
    const sim::MachineConfig machine{1, 0};
    const Domain dom{10, 100};
    const auto with_peel = sim::estimate_shift_and_peel(g, 5, dom, machine);
    const auto without = sim::estimate_shift_and_peel(g, 0, dom, machine);
    EXPECT_EQ(with_peel.total_time, without.total_time);
}

}  // namespace
}  // namespace lf
