// Dependence-analysis tests: the gallery DSL programs must produce exactly
// their gallery MLDGs; flow/anti/output classification; model violations.

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "ir/parser.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"
#include "workloads/sources.hpp"

namespace lf {
namespace {

void expect_same_graph(const Mldg& got, const Mldg& want) {
    ASSERT_EQ(got.num_nodes(), want.num_nodes());
    for (int v = 0; v < want.num_nodes(); ++v) {
        EXPECT_EQ(got.node(v).name, want.node(v).name);
        EXPECT_EQ(got.node(v).body_cost, want.node(v).body_cost) << want.node(v).name;
    }
    ASSERT_EQ(got.num_edges(), want.num_edges()) << "got:\n" << got.summary() << "want:\n"
                                                 << want.summary();
    for (const auto& e : want.edges()) {
        const auto found = got.find_edge(e.from, e.to);
        ASSERT_TRUE(found.has_value())
            << want.node(e.from).name << " -> " << want.node(e.to).name << " missing";
        EXPECT_EQ(got.edge(*found).vectors, e.vectors)
            << want.node(e.from).name << " -> " << want.node(e.to).name;
    }
}

TEST(Dependence, Fig2SourceReproducesFig2Graph) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    expect_same_graph(analysis::build_mldg(p), workloads::fig2_graph());
}

TEST(Dependence, Fig8SourceReproducesFig8Graph) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig8);
    expect_same_graph(analysis::build_mldg(p), workloads::fig8_graph());
}

TEST(Dependence, JacobiSourceReproducesJacobiGraph) {
    const ir::Program p = ir::parse_program(workloads::sources::kJacobiPair);
    expect_same_graph(analysis::build_mldg(p), workloads::jacobi_pair_graph());
}

TEST(Dependence, IirSourceReproducesIirGraph) {
    const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
    expect_same_graph(analysis::build_mldg(p), workloads::iir_chain_graph());
}

TEST(Dependence, Fig2DetailsAreAllFlow) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const auto info = analysis::analyze_dependences(p);
    for (const auto& d : info.dependences) {
        EXPECT_EQ(d.kind, analysis::DepKind::Flow) << d.str(p);
    }
    // 8 reads in the program, each a flow dependence (the intra-instance
    // pairs do not arise in fig2).
    EXPECT_EQ(info.dependences.size(), 8u);
}

TEST(Dependence, AntiDependenceWhenReadPrecedesWrite) {
    // Loop A at (i,j) reads b[i][j+1], which loop B writes at (i,j+1) later
    // in the same outer iteration: an anti dependence A -> B, vector (0,1).
    const ir::Program p = ir::parse_program(R"(
      program anti {
        loop A { a[i][j] = b[i][j+1]; }
        loop B { b[i][j] = a[i-1][j]; }
      }
    )");
    const auto info = analysis::analyze_dependences(p);
    bool found = false;
    for (const auto& d : info.dependences) {
        if (d.kind == analysis::DepKind::Anti) {
            EXPECT_EQ(d.from_loop, 0);
            EXPECT_EQ(d.to_loop, 1);
            EXPECT_EQ(d.vector, Vec2(0, 1));
            EXPECT_EQ(d.array, "b");
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(is_legal_mldg(info.graph));
}

TEST(Dependence, AntiDependenceAcrossOuterIterations) {
    // Loop A reads b[i+1][j]: the write (by B, one outer iteration later)
    // must stay after the read => anti dependence A -> B with vector (1,0).
    const ir::Program p = ir::parse_program(R"(
      program anti2 {
        loop A { a[i][j] = b[i+1][j]; }
        loop B { b[i][j] = 1.0; }
      }
    )");
    const auto info = analysis::analyze_dependences(p);
    ASSERT_EQ(info.dependences.size(), 1u);
    EXPECT_EQ(info.dependences[0].kind, analysis::DepKind::Anti);
    EXPECT_EQ(info.dependences[0].vector, Vec2(1, 0));
}

TEST(Dependence, OutputDependenceBetweenWriters) {
    const ir::Program p = ir::parse_program(R"(
      program out {
        loop A { c[i][j] = 1.0; }
        loop B { c[i-1][j] = 2.0; }
      }
    )");
    // A writes c[i][j] at iteration i; B writes c[i-1][j], i.e. cell (i,j)
    // at iteration i+1: output dependence A -> B with vector (1,0).
    const auto info = analysis::analyze_dependences(p);
    ASSERT_EQ(info.dependences.size(), 1u);
    EXPECT_EQ(info.dependences[0].kind, analysis::DepKind::Output);
    EXPECT_EQ(info.dependences[0].from_loop, 0);
    EXPECT_EQ(info.dependences[0].to_loop, 1);
    EXPECT_EQ(info.dependences[0].vector, Vec2(1, 0));
}

TEST(Dependence, IntraInstanceForwardingIsNotAnEdge) {
    const ir::Program p = ir::parse_program(R"(
      program fwd {
        loop A { a[i][j] = 1.0; b[i][j] = a[i][j]; }
      }
    )");
    const auto info = analysis::analyze_dependences(p);
    EXPECT_EQ(info.graph.num_edges(), 0);
    EXPECT_TRUE(info.dependences.empty());
}

TEST(Dependence, AnalyzerGraphsAreAlwaysProgramModelLegal) {
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        Rng rng(seed);
        const ir::Program p = workloads::random_program(rng);
        const Mldg g = analysis::build_mldg(p);
        EXPECT_TRUE(is_legal_mldg(g)) << p.str() << g.summary();
    }
}

TEST(Dependence, KindNames) {
    EXPECT_EQ(analysis::to_string(analysis::DepKind::Flow), "flow");
    EXPECT_EQ(analysis::to_string(analysis::DepKind::Anti), "anti");
    EXPECT_EQ(analysis::to_string(analysis::DepKind::Output), "output");
}

}  // namespace
}  // namespace lf
