// Tests for the baseline fusion techniques the paper compares against.

#include <gtest/gtest.h>

#include "baselines/kennedy_mckinley.hpp"
#include "baselines/naive.hpp"
#include "baselines/shift_and_peel.hpp"
#include "fusion/driver.hpp"
#include "ldg/legality.hpp"
#include "ldg/retiming.hpp"
#include "support/diagnostics.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"

namespace lf::baselines {
namespace {

TEST(Naive, FailsOnEveryPaperWorkloadWithPreventingDeps) {
    EXPECT_FALSE(naive_fusion(workloads::fig2_graph()).legal);
    EXPECT_FALSE(naive_fusion(workloads::fig8_graph()).legal);
    EXPECT_FALSE(naive_fusion(workloads::jacobi_pair_graph()).legal);
    EXPECT_FALSE(naive_fusion(workloads::iir_chain_graph()).legal);
}

TEST(Naive, SucceedsWhenNoPreventingDependence) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{0, 0}, {1, 2}});
    const auto r = naive_fusion(g);
    EXPECT_TRUE(r.legal);
    EXPECT_TRUE(r.inner_doall);
}

TEST(Naive, LegalButSerialWhenInnerCarried) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{0, 2}});
    const auto r = naive_fusion(g);
    EXPECT_TRUE(r.legal);
    EXPECT_FALSE(r.inner_doall);
}

TEST(KennedyMcKinley, Fig2NeedsThreeGroups) {
    const auto r = kennedy_mckinley_fusion(workloads::fig2_graph());
    ASSERT_EQ(r.num_groups(), 3);
    EXPECT_EQ(r.groups[0], (std::vector<int>{0, 1}));  // {A, B}
    EXPECT_EQ(r.groups[1], (std::vector<int>{2}));     // {C}
    EXPECT_EQ(r.groups[2], (std::vector<int>{3}));     // {D}
    EXPECT_TRUE(r.all_doall());
}

TEST(KennedyMcKinley, Fig8GroupsAndSerialRow) {
    const auto r = kennedy_mckinley_fusion(workloads::fig8_graph());
    ASSERT_EQ(r.num_groups(), 2);
    EXPECT_EQ(r.groups[0], (std::vector<int>{0, 1}));          // {A, B}
    EXPECT_EQ(r.groups[1], (std::vector<int>{2, 3, 4, 5, 6})); // {C..G}
    // Fusing A and B directly leaves the (0,1) dependence inside one row:
    // the group is NOT fully parallel -- unlike Algorithm 3's result.
    EXPECT_FALSE(r.group_is_doall[0]);
    EXPECT_TRUE(r.group_is_doall[1]);
}

TEST(KennedyMcKinley, JacobiCannotFuseTheTwoLoops) {
    const auto r = kennedy_mckinley_fusion(workloads::jacobi_pair_graph());
    EXPECT_EQ(r.num_groups(), 2);  // S and U stay separate
}

TEST(KennedyMcKinley, RejectsNonProgramModelGraphs) {
    EXPECT_THROW((void)kennedy_mckinley_fusion(workloads::fig14_graph()), Error);
}

TEST(KennedyMcKinley, GroupInternalFusionIsAlwaysLegal) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        Rng rng(seed);
        const Mldg g = workloads::random_legal_mldg(rng);
        const auto r = kennedy_mckinley_fusion(g);
        std::vector<int> group_of(static_cast<std::size_t>(g.num_nodes()), -1);
        for (int k = 0; k < r.num_groups(); ++k) {
            for (int v : r.groups[static_cast<std::size_t>(k)]) {
                group_of[static_cast<std::size_t>(v)] = k;
            }
        }
        for (const auto& e : g.edges()) {
            if (group_of[static_cast<std::size_t>(e.from)] !=
                group_of[static_cast<std::size_t>(e.to)])
                continue;
            EXPECT_GE(e.delta(), Vec2(0, 0)) << g.summary();
        }
        // Ordering constraints: a forward dependence never flows to an
        // earlier group.
        for (int eid = 0; eid < g.num_edges(); ++eid) {
            const auto& e = g.edge(eid);
            if (g.is_backward_edge(eid) || g.is_self_edge(eid)) continue;
            EXPECT_LE(group_of[static_cast<std::size_t>(e.from)],
                      group_of[static_cast<std::size_t>(e.to)]);
        }
    }
}

TEST(ShiftAndPeel, Fig2ShiftsMatchInnerAlignment) {
    const auto r = shift_and_peel_fusion(workloads::fig2_graph());
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.shift, (std::vector<std::int64_t>{0, 0, -2, -3}));
    EXPECT_EQ(r.peel, 3);
    // Legal after shifting, but (0, k>0) dependences remain: not DOALL.
    EXPECT_FALSE(r.inner_doall);
}

TEST(ShiftAndPeel, ShiftedGraphIsFusionLegal) {
    for (const auto& w : workloads::paper_workloads()) {
        if (!is_legal_mldg(w.graph)) continue;  // fig14 is graph-only
        const auto r = shift_and_peel_fusion(w.graph);
        ASSERT_TRUE(r.feasible) << w.id;
        Retiming rt(w.graph.num_nodes());
        for (int v = 0; v < w.graph.num_nodes(); ++v) {
            rt.of(v) = Vec2{0, r.shift[static_cast<std::size_t>(v)]};
        }
        EXPECT_TRUE(is_fusion_legal(rt.apply(w.graph))) << w.id;
    }
}

TEST(ShiftAndPeel, NeverAchievesFullParallelismOnThePaperWorkloads) {
    // The headline contrast: shifting alone cannot make any of the gallery's
    // fused rows DOALL, while the paper's algorithms parallelize all of them
    // (inner rows or hyperplanes).
    for (const auto& w : workloads::paper_workloads()) {
        if (!is_legal_mldg(w.graph)) continue;
        const auto r = shift_and_peel_fusion(w.graph);
        ASSERT_TRUE(r.feasible) << w.id;
        EXPECT_FALSE(r.inner_doall) << w.id;
    }
}

TEST(ShiftAndPeel, RejectsNonProgramModelGraphs) {
    EXPECT_THROW((void)shift_and_peel_fusion(workloads::fig14_graph()), Error);
}

TEST(Comparison, OurDriverDominatesBaselinesOnTheGallery) {
    for (const auto& w : workloads::paper_workloads()) {
        const FusionPlan plan = plan_fusion(w.graph);
        // Ours always fuses with full parallelism of some form.
        EXPECT_TRUE(plan.level == ParallelismLevel::InnerDoall ||
                    plan.level == ParallelismLevel::Hyperplane);
        // Naive direct fusion fails everywhere on the gallery.
        EXPECT_FALSE(naive_fusion(w.graph).legal) << w.id;
    }
}

}  // namespace
}  // namespace lf::baselines
