// Batched planning and incremental re-planning guards.
//
// The contract under test (fusion/ladder.hpp): try_plan_fusion_batch is a
// pure reordering of the sequential planner -- every job's plan, status and
// per-rung stage trace must be BYTE-IDENTICAL whether the job planned alone
// or batched with skeleton-mates, under clean runs and under every armed
// planner fault point. Likewise a delta re-plan seeded by
// PlanCache::near_miss_hints must land on the same plan as a cold solve;
// only the solver telemetry (batch_solves / delta_solves) may differ, and
// the digests below deliberately exclude it.

#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "fusion/driver.hpp"
#include "fusion/ladder.hpp"
#include "fusion/multidim.hpp"
#include "ir/parser.hpp"
#include "ldg/serialization.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"
#include "svc/plancache.hpp"
#include "svc/service.hpp"
#include "workloads/extra.hpp"
#include "workloads/gallery.hpp"

namespace lf {
namespace {

// ---------------------------------------------------------------------------
// Digests: everything observable about a planning result EXCEPT solver
// telemetry (batching legitimately changes how work is counted, never what
// is planned).

std::string digest_result(const Result<FusionPlan>& r) {
    std::ostringstream out;
    const std::vector<StageReport>& stages = r.ok() ? r.value().stages : r.status().stages;
    for (const StageReport& s : stages) {
        out << "stage " << s.stage << ":" << to_string(s.code);
        if (!s.detail.empty()) out << " [" << s.detail << "]";
        out << "\n";
    }
    if (!r.ok()) {
        out << "status " << to_string(r.status().code()) << " [" << r.status().message()
            << "]\n";
        return out.str();
    }
    const FusionPlan& plan = r.value();
    out << "status Ok\n";
    out << "algorithm " << to_string(plan.algorithm) << "\n";
    out << "level " << to_string(plan.level) << "\n";
    out << "schedule " << plan.schedule.str() << "\n";
    out << "hyperplane " << plan.hyperplane.str() << "\n";
    out << "body_order";
    for (int n : plan.body_order) out << " " << plan.retimed.node(n).name;
    out << "\n";
    out << "retiming";
    for (int n = 0; n < plan.retiming.num_nodes(); ++n) {
        out << " " << plan.retimed.node(n).name << "=" << plan.retiming.of(n).str();
    }
    out << "\n";
    out << serialize_mldg(plan.retimed, "retimed");
    return out.str();
}

std::string digest_nd(const std::optional<NdFusionPlan>& plan, const std::string& error,
                      const MldgN& g) {
    std::ostringstream out;
    if (!plan.has_value()) {
        out << "error [" << error << "]\n";
        return out.str();
    }
    out << "level "
        << (plan->level == NdParallelism::OutermostCarried ? "OutermostCarried" : "Hyperplane")
        << "\n";
    out << "schedule " << plan->schedule.str() << "\n";
    out << "retiming";
    for (int n = 0; n < plan->retiming.num_nodes(); ++n) {
        out << " " << g.node(n).name << "=" << plan->retiming.of(n).str();
    }
    out << "\n" << plan->retimed.summary();
    return out.str();
}

/// Every gallery graph -- the paper's figures, the extended DSL gallery,
/// and the canonical illegal input -- so the batch exercises all five rungs
/// (acyclic, cyclic-DOALL, forced carry, hyperplane, distribution) plus the
/// failure paths.
std::vector<std::pair<std::string, Mldg>> gallery_graphs() {
    std::vector<std::pair<std::string, Mldg>> graphs;
    for (const workloads::Workload& w : workloads::paper_workloads()) {
        graphs.emplace_back(w.id, w.graph);
    }
    for (const workloads::ExtraWorkload& w : workloads::extra_workloads()) {
        graphs.emplace_back(w.id, analysis::build_mldg(ir::parse_program(w.dsl_source)));
    }
    graphs.emplace_back("fig14_as_printed", workloads::fig14_graph_as_printed());
    return graphs;
}

std::uint64_t sum_stat(const Result<FusionPlan>& r,
                       std::uint64_t SolverStats::*field) {
    std::uint64_t total = 0;
    const std::vector<StageReport>& stages = r.ok() ? r.value().stages : r.status().stages;
    for (const StageReport& s : stages) total += s.solver.*field;
    return total;
}

class BatchPlan : public ::testing::Test {
  protected:
    void SetUp() override { faultpoint::reset(); }
    void TearDown() override { faultpoint::reset(); }
};

// ---------------------------------------------------------------------------
// Batch vs sequential: bit identity.

TEST_F(BatchPlan, GalleryBatchMatchesSequential) {
    const auto graphs = gallery_graphs();
    ASSERT_GE(graphs.size(), 5u);

    std::vector<std::string> sequential;
    for (const auto& [id, g] : graphs) sequential.push_back(digest_result(try_plan_fusion(g)));

    std::vector<BatchPlanJob> jobs(graphs.size());
    for (std::size_t i = 0; i < graphs.size(); ++i) jobs[i].graph = &graphs[i].second;
    try_plan_fusion_batch(std::span<BatchPlanJob>(jobs));

    for (std::size_t i = 0; i < graphs.size(); ++i) {
        ASSERT_TRUE(jobs[i].result.has_value()) << graphs[i].first;
        EXPECT_EQ(sequential[i], digest_result(*jobs[i].result))
            << "batched plan diverged from sequential for workload " << graphs[i].first;
    }
}

TEST_F(BatchPlan, SameSkeletonJobsSolveInLockstep) {
    // Two structurally identical graphs share one endpoint structure; the
    // batched kernel must report multi-lane solves while the plans stay
    // exactly the sequential ones.
    const Mldg g1 = workloads::fig2_graph();
    const Mldg g2 = workloads::fig2_graph();
    std::vector<BatchPlanJob> jobs(2);
    jobs[0].graph = &g1;
    jobs[1].graph = &g2;
    try_plan_fusion_batch(std::span<BatchPlanJob>(jobs));
    ASSERT_TRUE(jobs[0].result.has_value());
    ASSERT_TRUE(jobs[1].result.has_value());

    const std::string alone = digest_result(try_plan_fusion(g1));
    EXPECT_EQ(alone, digest_result(*jobs[0].result));
    EXPECT_EQ(alone, digest_result(*jobs[1].result));
    EXPECT_GE(sum_stat(*jobs[0].result, &SolverStats::batch_solves), 1u)
        << "same-skeleton jobs should have solved in lockstep";
}

TEST_F(BatchPlan, BatchMatchesSequentialUnderEveryPlannerFault) {
    const auto graphs = gallery_graphs();
    const char* const kFaults[] = {
        "acyclic_doall", "cyclic_doall.phase1", "cyclic_doall.phase2", "forced_carry",
        "hyperplane",    "llofra",              "distribution",        "solver.bellman_ford",
    };
    for (const char* fault : kFaults) {
        faultpoint::reset();
        faultpoint::arm(fault);
        std::vector<std::string> sequential;
        for (const auto& [id, g] : graphs) {
            sequential.push_back(digest_result(try_plan_fusion(g)));
        }

        faultpoint::reset();
        faultpoint::arm(fault);
        std::vector<BatchPlanJob> jobs(graphs.size());
        for (std::size_t i = 0; i < graphs.size(); ++i) jobs[i].graph = &graphs[i].second;
        try_plan_fusion_batch(std::span<BatchPlanJob>(jobs));

        for (std::size_t i = 0; i < graphs.size(); ++i) {
            ASSERT_TRUE(jobs[i].result.has_value());
            EXPECT_EQ(sequential[i], digest_result(*jobs[i].result))
                << "fault " << fault << ", workload " << graphs[i].first;
        }
    }
}

TEST_F(BatchPlan, NdBatchMatchesSequential) {
    std::vector<std::pair<std::string, MldgN>> fixtures;
    {
        MldgN g(3);
        const int a = g.add_node("A");
        const int b = g.add_node("B");
        const int c = g.add_node("C");
        g.add_edge(a, b, {VecN{0, 0, -2}, VecN{0, 0, 1}});
        g.add_edge(b, c, {VecN{0, 1, -1}});
        g.add_edge(c, a, {VecN{1, -1, 0}});
        g.add_edge(c, c, {VecN{1, 0, 2}});
        fixtures.emplace_back("stencil_3d", std::move(g));
    }
    {
        MldgN g(4);
        const int a = g.add_node("A");
        const int b = g.add_node("B");
        g.add_edge(a, b, {VecN{0, 0, 0, -3}, VecN{0, 0, 1, 2}});
        g.add_edge(b, a, {VecN{0, 1, -1, 0}});
        g.add_edge(a, a, {VecN{1, 0, 0, -2}});
        fixtures.emplace_back("wavefront_4d", std::move(g));
    }
    {
        // Unschedulable: a zero-distance cycle. The batched entry point must
        // report the same error text the sequential planner throws.
        MldgN g(2);
        const int a = g.add_node("A");
        const int b = g.add_node("B");
        g.add_edge(a, b, {VecN{0, 0}});
        g.add_edge(b, a, {VecN{0, 0}});
        fixtures.emplace_back("zero_cycle", std::move(g));
    }

    std::vector<BatchPlanJobNd> jobs(fixtures.size());
    for (std::size_t i = 0; i < fixtures.size(); ++i) jobs[i].graph = &fixtures[i].second;
    try_plan_fusion_batch_nd(std::span<BatchPlanJobNd>(jobs));

    for (std::size_t i = 0; i < fixtures.size(); ++i) {
        const MldgN& g = fixtures[i].second;
        std::optional<NdFusionPlan> seq;
        std::string seq_error;
        try {
            seq.emplace(plan_fusion_nd(g));
        } catch (const std::exception& e) {
            seq_error = e.what();
        }
        EXPECT_EQ(digest_nd(seq, seq_error, g), digest_nd(jobs[i].plan, jobs[i].error, g))
            << fixtures[i].first;
    }
}

// ---------------------------------------------------------------------------
// Incremental re-planning: near-miss warm starts land on the cold plan.

/// A cyclic, schedulable three-loop ring whose last edge's dependence set is
/// parameterized -- the knob that turns one graph into a structural
/// near-miss of another.
Mldg ring(std::int64_t y) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    g.add_edge(a, b, {{0, 1}});
    g.add_edge(b, c, {{1, -2}});
    g.add_edge(c, a, {{1, y}});
    return g;
}

TEST_F(BatchPlan, NearMissHintsReproduceColdPlan) {
    const Mldg base = ring(3);
    LadderArtifacts artifacts;
    TryPlanOptions opts;
    opts.artifacts = &artifacts;
    const Result<FusionPlan> seeded = try_plan_fusion(base, opts);
    ASSERT_TRUE(seeded.ok());
    ASSERT_FALSE(artifacts.empty()) << "a solved ladder must leave distance vectors behind";

    svc::PlanCache cache(8);
    const std::uint64_t key = svc::PlanCache::key_of(base, PlanOptions{}, true);
    cache.insert(key, seeded.value(), &base, &artifacts);

    // An exact structural match is a cache hit's business, never a near miss.
    EXPECT_FALSE(cache.near_miss_hints(base, 4).has_value());

    const Mldg target = ring(5);
    const std::optional<LadderWarmHints> hints = cache.near_miss_hints(target, 4);
    ASSERT_TRUE(hints.has_value());
    EXPECT_GE(cache.stats().near_miss_hits, 1u);

    const Result<FusionPlan> cold = try_plan_fusion(target);
    TryPlanOptions warm_opts;
    warm_opts.warm_hints = &*hints;
    const Result<FusionPlan> warm = try_plan_fusion(target, warm_opts);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(digest_result(cold), digest_result(warm))
        << "a delta re-plan must be bit-identical to a cold plan";
    EXPECT_GE(sum_stat(warm, &SolverStats::delta_solves), 1u)
        << "the warm hints were never adopted";
}

TEST_F(BatchPlan, NearMissRespectsEdgeDiffBudget) {
    const Mldg base = ring(3);
    LadderArtifacts artifacts;
    TryPlanOptions opts;
    opts.artifacts = &artifacts;
    const Result<FusionPlan> seeded = try_plan_fusion(base, opts);
    ASSERT_TRUE(seeded.ok());
    svc::PlanCache cache(8);
    cache.insert(svc::PlanCache::key_of(base, PlanOptions{}, true), seeded.value(), &base,
                 &artifacts);

    // Two edges differ; a budget of one must refuse, a budget of two accept.
    Mldg two_off;
    {
        const int a = two_off.add_node("A");
        const int b = two_off.add_node("B");
        const int c = two_off.add_node("C");
        two_off.add_edge(a, b, {{0, 2}});
        two_off.add_edge(b, c, {{1, -2}});
        two_off.add_edge(c, a, {{1, 7}});
    }
    EXPECT_FALSE(cache.near_miss_hints(two_off, 1).has_value());
    EXPECT_TRUE(cache.near_miss_hints(two_off, 2).has_value());

    // A different skeleton never matches, whatever the budget.
    Mldg chain;
    {
        const int a = chain.add_node("A");
        const int b = chain.add_node("B");
        const int c = chain.add_node("C");
        chain.add_edge(a, b, {{0, 1}});
        chain.add_edge(b, c, {{1, -2}});
        chain.add_edge(a, c, {{1, 3}});
    }
    EXPECT_FALSE(cache.near_miss_hints(chain, 8).has_value());
}

// ---------------------------------------------------------------------------
// Service-level: the delta path serves real jobs, and arming the plan-cache
// fault forces every job back onto the cold path with identical outcomes.

TEST_F(BatchPlan, ServiceDeltaReplanMatchesColdUnderFault) {
    std::vector<svc::JobSpec> jobs(2);
    jobs[0].id = "seed";
    jobs[0].graph = ring(3);
    jobs[1].id = "near_miss";
    jobs[1].graph = ring(5);

    svc::ServiceConfig config;
    config.workers = 1;
    config.plan_batch = 1;  // force the sequential path: job 2 must delta-solve
    svc::FusionService service(config);
    const svc::RunReport clean = service.run(jobs);
    ASSERT_EQ(clean.jobs.size(), 2u);
    EXPECT_EQ(clean.jobs[0].status, svc::JobStatus::Verified);
    EXPECT_EQ(clean.jobs[1].status, svc::JobStatus::Verified);
    EXPECT_EQ(clean.jobs[1].cache, svc::CacheOutcome::Miss);
    EXPECT_GE(clean.plancache.near_miss_hits, 1u)
        << "the second job should have warm-started off the first's entry";

    // svc.plancache armed: both jobs bypass the cache (no lookups, no delta
    // hints, no inserts) and replan cold -- with the same verdicts and plans.
    faultpoint::arm("svc.plancache");
    svc::FusionService faulted(config);
    const svc::RunReport cold = faulted.run(jobs);
    EXPECT_GE(faultpoint::hits("svc.plancache"), 1u);
    ASSERT_EQ(cold.jobs.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(cold.jobs[i].status, svc::JobStatus::Verified);
        EXPECT_EQ(cold.jobs[i].cache, svc::CacheOutcome::Bypass);
        EXPECT_EQ(cold.jobs[i].algorithm, clean.jobs[i].algorithm);
        EXPECT_EQ(cold.jobs[i].level, clean.jobs[i].level);
    }
    EXPECT_EQ(cold.plancache.near_miss_hits + cold.plancache.near_miss_misses, 0u)
        << "a bypassed run must never consult the near-miss index";
}

TEST_F(BatchPlan, ServiceBatchPrepassKeepsVerdicts) {
    // A mixed manifest planned with batching on vs off must produce the same
    // per-job verdicts, algorithms and levels.
    std::vector<svc::JobSpec> jobs;
    int n = 0;
    for (const auto& [id, g] : gallery_graphs()) {
        svc::JobSpec spec;
        spec.id = "job" + std::to_string(n++) + "_" + id;
        spec.graph = g;
        jobs.push_back(std::move(spec));
    }

    svc::ServiceConfig batched;
    batched.workers = 2;
    batched.plan_batch = 8;
    const svc::RunReport with_batch = svc::FusionService(batched).run(jobs);

    svc::ServiceConfig solo;
    solo.workers = 2;
    solo.plan_batch = 1;
    const svc::RunReport without = svc::FusionService(solo).run(jobs);

    ASSERT_EQ(with_batch.jobs.size(), without.jobs.size());
    for (std::size_t i = 0; i < with_batch.jobs.size(); ++i) {
        EXPECT_EQ(with_batch.jobs[i].status, without.jobs[i].status) << jobs[i].id;
        EXPECT_EQ(with_batch.jobs[i].algorithm, without.jobs[i].algorithm) << jobs[i].id;
        EXPECT_EQ(with_batch.jobs[i].level, without.jobs[i].level) << jobs[i].id;
    }
}

}  // namespace
}  // namespace lf
