// Tests for the standalone plan certifier: valid plans pass, and every kind
// of corruption is caught with a specific violation.

#include <gtest/gtest.h>

#include "fusion/certify.hpp"
#include "fusion/driver.hpp"
#include "ldg/legality.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"

namespace lf {
namespace {

TEST(Certify, AllGalleryPlansCertify) {
    for (const auto& w : workloads::paper_workloads()) {
        const FusionPlan plan = plan_fusion(w.graph);
        const PlanCertificate cert = certify_plan(w.graph, plan);
        EXPECT_TRUE(cert.valid) << w.id << ": "
                                << (cert.violations.empty() ? "?" : cert.violations.front());
    }
}

class CertifyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CertifyPropertyTest, RandomPlansCertify) {
    Rng rng(GetParam() * 61 + 3);
    const Mldg g = workloads::random_schedulable_mldg(rng);
    EXPECT_TRUE(certify_plan(g, plan_fusion(g)).valid);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertifyPropertyTest, ::testing::Range<std::uint64_t>(0, 20));

TEST(Certify, CatchesTamperedRetiming) {
    const Mldg g = workloads::fig2_graph();
    FusionPlan plan = plan_fusion(g);
    plan.retiming.of(1) = Vec2{-5, 3};  // retimed graph now stale
    const PlanCertificate cert = certify_plan(g, plan);
    ASSERT_FALSE(cert.valid);
    EXPECT_NE(cert.violations.front().find("retiming.apply"), std::string::npos);
}

TEST(Certify, CatchesTamperedRetimedGraph) {
    const Mldg g = workloads::fig2_graph();
    FusionPlan plan = plan_fusion(g);
    plan.retimed = g;  // original instead of retimed
    EXPECT_FALSE(certify_plan(g, plan).valid);
}

TEST(Certify, CatchesBadBodyOrder) {
    const Mldg g = workloads::fig2_graph();
    FusionPlan plan = plan_fusion(g);
    // fig2's retimed C->D is (0,0): D before C violates it.
    plan.body_order = {0, 1, 3, 2};
    const PlanCertificate cert = certify_plan(g, plan);
    ASSERT_FALSE(cert.valid);
    EXPECT_NE(cert.violations.front().find("(0,0)"), std::string::npos);
}

TEST(Certify, CatchesNonPermutationBodyOrder) {
    const Mldg g = workloads::fig2_graph();
    FusionPlan plan = plan_fusion(g);
    plan.body_order = {0, 0, 1, 2};
    EXPECT_FALSE(certify_plan(g, plan).valid);
}

TEST(Certify, CatchesNonStrictSchedule) {
    const Mldg g = workloads::fig14_graph();
    FusionPlan plan = plan_fusion(g);
    plan.schedule = Vec2{1, 0};  // rows are not parallel for fig14
    plan.hyperplane = Vec2{0, 1};
    const PlanCertificate cert = certify_plan(g, plan);
    ASSERT_FALSE(cert.valid);
    EXPECT_NE(cert.violations.front().find("strict"), std::string::npos);
}

TEST(Certify, CatchesNonPerpendicularHyperplane) {
    const Mldg g = workloads::fig2_graph();
    FusionPlan plan = plan_fusion(g);
    plan.hyperplane = Vec2{1, 1};
    EXPECT_FALSE(certify_plan(g, plan).valid);
}

TEST(Certify, CatchesFalseDoallClaim) {
    // LLOFRA alone leaves fig2's rows serial; claiming InnerDoall must fail.
    const Mldg g = workloads::fig2_graph();
    FusionPlan plan = plan_fusion(g);
    FusionPlan fake = plan;
    fake.retiming = Retiming(std::vector<Vec2>{{0, 0}, {0, 0}, {0, -2}, {0, -3}});
    fake.retimed = fake.retiming.apply(g);
    fake.body_order = *fused_body_order(fake.retimed);
    fake.level = ParallelismLevel::InnerDoall;
    fake.schedule = Vec2{1, 0};
    fake.hyperplane = Vec2{0, 1};
    const PlanCertificate cert = certify_plan(g, fake);
    EXPECT_FALSE(cert.valid);
}

TEST(Certify, SchedulabilityDiagnosticsNameTheCycle) {
    Mldg g;
    const int a = g.add_node("P");
    const int b = g.add_node("Q");
    g.add_edge(a, b, {{0, 2}});
    g.add_edge(b, a, {{0, -2}});
    const auto rep = check_schedulable(g);
    ASSERT_FALSE(rep.legal);
    // The witness cycle must name both nodes.
    EXPECT_NE(rep.violations.front().find("P"), std::string::npos) << rep.violations.front();
    EXPECT_NE(rep.violations.front().find("Q"), std::string::npos) << rep.violations.front();
}

}  // namespace
}  // namespace lf
