// Tests for the C emitter: structural checks on the generated source plus a
// full end-to-end check that compiles the emitted program with the system C
// compiler, runs it, and verifies it prints "OK <checksum>" with exactly the
// checksum the interpreter predicts. The compile-and-run tests are skipped
// when no C compiler is available.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "analysis/dependence.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "transform/codegen_c.hpp"
#include "transform/fused_program.hpp"
#include "workloads/sources.hpp"

namespace lf::transform {
namespace {

bool have_cc() {
    static const bool available = std::system("cc --version > /dev/null 2>&1") == 0;
    return available;
}

/// Compiles `source` and runs it; returns the first line of its stdout, or
/// "" on any failure.
std::string compile_and_run(const std::string& source, const std::string& tag) {
    const std::string base = std::string(::testing::TempDir()) + "/lf_cgen_" + tag;
    {
        std::ofstream out(base + ".c");
        out << source;
    }
    const std::string compile = "cc -O2 -o " + base + " " + base + ".c 2> " + base + ".log";
    if (std::system(compile.c_str()) != 0) return "";
    FILE* pipe = ::popen((base + " 2>/dev/null").c_str(), "r");
    if (pipe == nullptr) return "";
    char line[256] = {0};
    const char* got = std::fgets(line, sizeof(line), pipe);
    ::pclose(pipe);
    if (got == nullptr) return "";
    std::string s(line);
    if (!s.empty() && s.back() == '\n') s.pop_back();
    return s;
}

FusedProgram make_fused(const ir::Program& p) {
    return fuse_program(p, plan_fusion(analysis::build_mldg(p)));
}

TEST(CodegenC, StructureContainsBothFormsAndGuards) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const FusedProgram fp = make_fused(p);
    const std::string src = emit_c_program(p, fp, Domain{20, 20});
    EXPECT_NE(src.find("static void run_original(void)"), std::string::npos);
    EXPECT_NE(src.find("static void run_fused(void)"), std::string::npos);
    EXPECT_NE(src.find("#pragma omp parallel for"), std::string::npos);  // DOALL rows
    EXPECT_NE(src.find("boundary_value"), std::string::npos);
    // The retimed statement of loop D (r = (-1,-1)).
    EXPECT_NE(src.find("f_e(i - 1, j - 1) = f_c(i - 1, j)"), std::string::npos);
    // Every pragma is guarded so the file is -Wall -Werror clean sans -fopenmp.
    EXPECT_NE(src.find("#if defined(_OPENMP)"), std::string::npos);
    // Hyperplane plans get the dual emission: a DOALL wavefront over
    // t = s1*i + j under _OPENMP, the sequential lexicographic scan otherwise.
    const ir::Program iir = ir::parse_program(workloads::sources::kIirChain);
    const std::string iir_src = emit_c_program(iir, make_fused(iir), Domain{20, 20});
    EXPECT_NE(iir_src.find("for (int64_t t = "), std::string::npos);
    EXPECT_NE(iir_src.find("#if defined(_OPENMP)"), std::string::npos);
    EXPECT_NE(iir_src.find("#else"), std::string::npos);
    // No unguarded pragma: each "#pragma omp" is preceded by the guard line.
    std::size_t at = 0;
    while ((at = iir_src.find("#pragma omp", at)) != std::string::npos) {
        const std::size_t line_start = iir_src.rfind('\n', at);
        ASSERT_NE(line_start, std::string::npos);
        const std::size_t prev = iir_src.rfind("#if defined(_OPENMP)", at);
        EXPECT_NE(prev, std::string::npos) << "unguarded pragma at offset " << at;
        at += 1;
    }
}

TEST(CodegenC, LiteralsRoundTripAsCDoubles) {
    const ir::Program p =
        ir::parse_program("program lit { loop A { a[i][j] = 0.1 + 2 * x[i][j]; } }");
    const std::string src = emit_c_program(p, make_fused(p), Domain{4, 4});
    EXPECT_NE(src.find("0.10000000000000001"), std::string::npos);  // %.17g of 0.1
    EXPECT_NE(src.find("2.0"), std::string::npos);
}

struct CWorkloadCase {
    const char* id;
    std::string_view source;
};

class CodegenCEndToEnd : public ::testing::TestWithParam<CWorkloadCase> {};

TEST_P(CodegenCEndToEnd, CompiledProgramAgreesWithInterpreter) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    const ir::Program p = ir::parse_program(GetParam().source);
    const FusedProgram fp = make_fused(p);
    const Domain dom{13, 11};
    const std::string output = compile_and_run(emit_c_program(p, fp, dom), GetParam().id);
    ASSERT_FALSE(output.empty()) << "compilation or execution failed";
    EXPECT_EQ(output, "OK " + expected_c_checksum(p, dom));
}

INSTANTIATE_TEST_SUITE_P(
    Gallery, CodegenCEndToEnd,
    ::testing::Values(CWorkloadCase{"fig2", lf::workloads::sources::kFig2},
                      CWorkloadCase{"fig8", lf::workloads::sources::kFig8},
                      CWorkloadCase{"jacobi", lf::workloads::sources::kJacobiPair},
                      CWorkloadCase{"iir", lf::workloads::sources::kIirChain}),
    [](const ::testing::TestParamInfo<CWorkloadCase>& info) { return info.param.id; });

}  // namespace
}  // namespace lf::transform
