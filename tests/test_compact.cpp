// Tests for retiming compaction (x-spread minimization).

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "exec/engines.hpp"
#include "exec/equivalence.hpp"
#include "exec/store.hpp"
#include "fusion/ablation.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/certify.hpp"
#include "fusion/compact.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "ldg/legality.hpp"
#include "transform/fused_program.hpp"
#include "support/diagnostics.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"

namespace lf {
namespace {

TEST(Compact, Fig2SpreadIsAlreadyMinimal) {
    const Mldg g = workloads::fig2_graph();
    const auto compact = cyclic_doall_fusion_compact(g);
    ASSERT_TRUE(compact.has_value());
    // Cycle A->B->C->D->A has x-weight 3 with one hard edge forced carried:
    // some node must lag; spread 1 is optimal and the paper's solution
    // already achieves it.
    EXPECT_EQ(ablation::prologue_rows(*compact), 1);
    const auto order = fused_body_order(compact->apply(g));
    ASSERT_TRUE(order.has_value());
    EXPECT_TRUE(is_fused_inner_doall(compact->apply(g), *order));
}

TEST(Compact, Fig8HalvesNothingButStaysOptimal) {
    const Mldg g = workloads::fig8_graph();
    const Retiming paper = acyclic_doall_fusion(g);
    const Retiming compact = acyclic_doall_fusion_compact(g);
    EXPECT_TRUE(is_fused_inner_doall(compact.apply(g)));
    EXPECT_LE(ablation::prologue_rows(compact), ablation::prologue_rows(paper));
}

TEST(Compact, CarriedChainNeedsNoPrologueEitherWay) {
    // A cycle of already-carried dependences needs no retiming at all; both
    // the plain Bellman-Ford solution and the spread-bounded search find
    // spread 0.
    Mldg g;
    const int n = 6;
    for (int v = 0; v < n; ++v) g.add_node("L" + std::to_string(v));
    for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, {{2, 0}});
    g.add_edge(n - 1, 0, {{2, 0}});  // cycle, no hard edges

    const auto plain = cyclic_doall_fusion(g);
    ASSERT_TRUE(plain.retiming.has_value());
    const auto compact = cyclic_doall_fusion_compact(g);
    ASSERT_TRUE(compact.has_value());
    EXPECT_EQ(ablation::prologue_rows(*plain.retiming), 0);
    EXPECT_EQ(ablation::prologue_rows(*compact), 0);
}

TEST(Compact, PlainBellmanFordSolutionIsAlreadySpreadOptimal) {
    // The optimality result (see fusion/compact.hpp): the paper's plain
    // all-sources solution always achieves the minimum spread, so the
    // spread-bounded search can never improve on it.
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        Rng rng(seed * 17 + 3);
        const Mldg g = workloads::random_legal_mldg(rng);
        const auto plain = cyclic_doall_fusion(g);
        const auto compact = cyclic_doall_fusion_compact(g);
        if (!plain.retiming.has_value() || !compact.has_value()) continue;
        EXPECT_EQ(ablation::prologue_rows(*compact), ablation::prologue_rows(*plain.retiming));
    }
}

TEST(Compact, SameSuccessSetAsPlainAlgorithm4) {
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        Rng rng(seed * 23 + 1);
        const Mldg g = workloads::random_legal_mldg(rng);
        const auto plain = cyclic_doall_fusion(g);
        const auto compact = cyclic_doall_fusion_compact(g);
        EXPECT_EQ(plain.retiming.has_value(), compact.has_value());
    }
}

TEST(Compact, NeverWorseAndAlwaysValid) {
    // By the optimality result the spreads are in fact always equal; the
    // invariants checked here are "never worse, always a valid DOALL plan".
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        Rng rng(seed * 41 + 9);
        const Mldg g = workloads::random_legal_mldg(rng);
        const auto plain = cyclic_doall_fusion(g);
        const auto compact = cyclic_doall_fusion_compact(g);
        if (!compact.has_value()) continue;
        ASSERT_TRUE(plain.retiming.has_value());
        const Mldg gr = compact->apply(g);
        const auto order = fused_body_order(gr);
        ASSERT_TRUE(order.has_value());
        EXPECT_TRUE(is_fused_inner_doall(gr, *order));
        EXPECT_LE(ablation::prologue_rows(*compact), ablation::prologue_rows(*plain.retiming));
    }
}

TEST(Compact, AcyclicVariantMatchesPlainParallelism) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        Rng rng(seed * 53 + 2);
        workloads::RandomGraphOptions opt;
        opt.backward_edge_prob = 0;
        opt.self_edge_prob = 0;
        const Mldg g = workloads::random_legal_mldg(rng, opt);
        const Retiming compact = acyclic_doall_fusion_compact(g);
        EXPECT_TRUE(is_fused_inner_doall(compact.apply(g)));
        EXPECT_LE(ablation::prologue_rows(compact),
                  ablation::prologue_rows(acyclic_doall_fusion(g)));
    }
}

TEST(Compact, DriverOptionProducesCertifiedCompactPlans) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed * 67 + 31);
        const Mldg g = workloads::random_legal_mldg(rng);
        const FusionPlan plain = plan_fusion(g);
        const FusionPlan compact = plan_fusion(g, PlanOptions{.compact_prologue = true});
        EXPECT_EQ(plain.level, compact.level);
        EXPECT_EQ(plain.algorithm, compact.algorithm);
        if (compact.level == ParallelismLevel::InnerDoall &&
            compact.algorithm == AlgorithmUsed::CyclicDoall) {
            EXPECT_LE(ablation::prologue_rows(compact.retiming),
                      ablation::prologue_rows(plain.retiming));
        }
    }
}

TEST(Compact, DriverOptionOnCarriedChain) {
    Mldg g;
    for (int v = 0; v < 6; ++v) g.add_node("L" + std::to_string(v));
    for (int v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1, {{2, 0}});
    g.add_edge(5, 0, {{2, 0}});
    const FusionPlan compact = plan_fusion(g, PlanOptions{.compact_prologue = true});
    EXPECT_EQ(ablation::prologue_rows(compact.retiming), 0);
}

TEST(Compact, RejectsBadInputs) {
    EXPECT_THROW((void)acyclic_doall_fusion_compact(workloads::fig2_graph()), Error);
}

// ---- Golden minimality: the PlanPolicy::SmallestCode objective ----
//
// Across the full paper gallery the smallest-code plan must (a) certify,
// (b) never carry more total retiming magnitude than the default
// fastest-schedule plan, and (c) be strictly smaller on at least two
// workloads -- the objective has to actually buy something, not just
// break even.

TEST(PolicyGolden, SmallestCodeNeverLargerAcrossGalleryAndStrictlySmallerTwice) {
    PlanOptions fastest;
    PlanOptions smallest;
    smallest.policy = PlanPolicy::SmallestCode;
    int strict_wins = 0;
    for (const auto& w : workloads::paper_workloads()) {
        const FusionPlan pf = plan_fusion(w.graph, fastest);
        const FusionPlan ps = plan_fusion(w.graph, smallest);
        const std::int64_t mf = retiming_magnitude(pf.retiming);
        const std::int64_t ms = retiming_magnitude(ps.retiming);
        EXPECT_LE(ms, mf) << w.id << ": smallest-code plan grew the retiming";
        if (ms < mf) ++strict_wins;
        // The objective trades fringe size, never parallelism: the rung
        // that accepted the plan is the same under both policies.
        EXPECT_EQ(ps.level, pf.level) << w.id;
        const PlanCertificate cert = certify_plan(w.graph, ps);
        EXPECT_TRUE(cert.valid) << w.id << ": "
                                << (cert.violations.empty() ? "" : cert.violations.front());
    }
    EXPECT_GE(strict_wins, 2) << "the minimization pass stopped buying anything";
}

TEST(PolicyGolden, KnownMagnitudes) {
    // Pinned wins (golden values): fig8's acyclic chain compacts 10 -> 4
    // and the iir cascade recenters 13 -> 9. A legitimate planner change
    // may move these -- update the constants alongside BENCH_codesize's
    // baseline if so -- but an accidental slide should be loud.
    PlanOptions smallest;
    smallest.policy = PlanPolicy::SmallestCode;
    EXPECT_EQ(retiming_magnitude(
                  plan_fusion(workloads::fig8_graph(), smallest).retiming), 4);
    EXPECT_EQ(retiming_magnitude(
                  plan_fusion(workloads::iir_chain_graph(), smallest).retiming), 9);
}

TEST(PolicyGolden, DefaultPolicyIsBitIdenticalToLegacyPlans) {
    // PlanOptions{} must reproduce the historical planner exactly: same
    // retiming on every node, same level, same schedule.
    for (const auto& w : workloads::paper_workloads()) {
        const FusionPlan legacy = plan_fusion(w.graph);
        const FusionPlan opt = plan_fusion(w.graph, PlanOptions{});
        ASSERT_EQ(legacy.retiming.num_nodes(), opt.retiming.num_nodes()) << w.id;
        for (int v = 0; v < legacy.retiming.num_nodes(); ++v) {
            EXPECT_EQ(legacy.retiming.of(v).x, opt.retiming.of(v).x) << w.id;
            EXPECT_EQ(legacy.retiming.of(v).y, opt.retiming.of(v).y) << w.id;
        }
        EXPECT_EQ(legacy.level, opt.level) << w.id;
    }
}

TEST(PolicyGolden, SmallestCodePlansPreserveInterpreterResults) {
    // Magnitude minimization must be invisible to the program semantics:
    // for every replayable workload, the fused form under the smallest-code
    // plan computes bit-identical results to the original loop sequence.
    PlanOptions smallest;
    smallest.policy = PlanPolicy::SmallestCode;
    const Domain dom{17, 13};
    for (const auto& w : workloads::paper_workloads()) {
        if (w.dsl_source.empty()) continue;  // fig14 is graph-only
        const ir::Program p = ir::parse_program(w.dsl_source);
        const FusionPlan plan = plan_fusion(analysis::build_mldg(p), smallest);
        const transform::FusedProgram fp = transform::fuse_program(p, plan);
        exec::ArrayStore golden(p, dom);
        exec::ArrayStore subject(p, dom);
        (void)exec::run_original(p, dom, golden);
        // Sequential lexicographic order is valid for every plan level.
        (void)exec::run_fused_rowwise(fp, dom, subject);
        const auto diff = exec::first_difference(p, dom, golden, subject);
        EXPECT_FALSE(diff.has_value()) << w.id << ": " << diff.value_or("");
    }
}

}  // namespace
}  // namespace lf
