// Tests for retiming compaction (x-spread minimization).

#include <gtest/gtest.h>

#include "fusion/ablation.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/compact.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/driver.hpp"
#include "ldg/legality.hpp"
#include "support/diagnostics.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"

namespace lf {
namespace {

TEST(Compact, Fig2SpreadIsAlreadyMinimal) {
    const Mldg g = workloads::fig2_graph();
    const auto compact = cyclic_doall_fusion_compact(g);
    ASSERT_TRUE(compact.has_value());
    // Cycle A->B->C->D->A has x-weight 3 with one hard edge forced carried:
    // some node must lag; spread 1 is optimal and the paper's solution
    // already achieves it.
    EXPECT_EQ(ablation::prologue_rows(*compact), 1);
    const auto order = fused_body_order(compact->apply(g));
    ASSERT_TRUE(order.has_value());
    EXPECT_TRUE(is_fused_inner_doall(compact->apply(g), *order));
}

TEST(Compact, Fig8HalvesNothingButStaysOptimal) {
    const Mldg g = workloads::fig8_graph();
    const Retiming paper = acyclic_doall_fusion(g);
    const Retiming compact = acyclic_doall_fusion_compact(g);
    EXPECT_TRUE(is_fused_inner_doall(compact.apply(g)));
    EXPECT_LE(ablation::prologue_rows(compact), ablation::prologue_rows(paper));
}

TEST(Compact, CarriedChainNeedsNoPrologueEitherWay) {
    // A cycle of already-carried dependences needs no retiming at all; both
    // the plain Bellman-Ford solution and the spread-bounded search find
    // spread 0.
    Mldg g;
    const int n = 6;
    for (int v = 0; v < n; ++v) g.add_node("L" + std::to_string(v));
    for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, {{2, 0}});
    g.add_edge(n - 1, 0, {{2, 0}});  // cycle, no hard edges

    const auto plain = cyclic_doall_fusion(g);
    ASSERT_TRUE(plain.retiming.has_value());
    const auto compact = cyclic_doall_fusion_compact(g);
    ASSERT_TRUE(compact.has_value());
    EXPECT_EQ(ablation::prologue_rows(*plain.retiming), 0);
    EXPECT_EQ(ablation::prologue_rows(*compact), 0);
}

TEST(Compact, PlainBellmanFordSolutionIsAlreadySpreadOptimal) {
    // The optimality result (see fusion/compact.hpp): the paper's plain
    // all-sources solution always achieves the minimum spread, so the
    // spread-bounded search can never improve on it.
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        Rng rng(seed * 17 + 3);
        const Mldg g = workloads::random_legal_mldg(rng);
        const auto plain = cyclic_doall_fusion(g);
        const auto compact = cyclic_doall_fusion_compact(g);
        if (!plain.retiming.has_value() || !compact.has_value()) continue;
        EXPECT_EQ(ablation::prologue_rows(*compact), ablation::prologue_rows(*plain.retiming));
    }
}

TEST(Compact, SameSuccessSetAsPlainAlgorithm4) {
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        Rng rng(seed * 23 + 1);
        const Mldg g = workloads::random_legal_mldg(rng);
        const auto plain = cyclic_doall_fusion(g);
        const auto compact = cyclic_doall_fusion_compact(g);
        EXPECT_EQ(plain.retiming.has_value(), compact.has_value());
    }
}

TEST(Compact, NeverWorseAndAlwaysValid) {
    // By the optimality result the spreads are in fact always equal; the
    // invariants checked here are "never worse, always a valid DOALL plan".
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        Rng rng(seed * 41 + 9);
        const Mldg g = workloads::random_legal_mldg(rng);
        const auto plain = cyclic_doall_fusion(g);
        const auto compact = cyclic_doall_fusion_compact(g);
        if (!compact.has_value()) continue;
        ASSERT_TRUE(plain.retiming.has_value());
        const Mldg gr = compact->apply(g);
        const auto order = fused_body_order(gr);
        ASSERT_TRUE(order.has_value());
        EXPECT_TRUE(is_fused_inner_doall(gr, *order));
        EXPECT_LE(ablation::prologue_rows(*compact), ablation::prologue_rows(*plain.retiming));
    }
}

TEST(Compact, AcyclicVariantMatchesPlainParallelism) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        Rng rng(seed * 53 + 2);
        workloads::RandomGraphOptions opt;
        opt.backward_edge_prob = 0;
        opt.self_edge_prob = 0;
        const Mldg g = workloads::random_legal_mldg(rng, opt);
        const Retiming compact = acyclic_doall_fusion_compact(g);
        EXPECT_TRUE(is_fused_inner_doall(compact.apply(g)));
        EXPECT_LE(ablation::prologue_rows(compact),
                  ablation::prologue_rows(acyclic_doall_fusion(g)));
    }
}

TEST(Compact, DriverOptionProducesCertifiedCompactPlans) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed * 67 + 31);
        const Mldg g = workloads::random_legal_mldg(rng);
        const FusionPlan plain = plan_fusion(g);
        const FusionPlan compact = plan_fusion(g, PlanOptions{.compact_prologue = true});
        EXPECT_EQ(plain.level, compact.level);
        EXPECT_EQ(plain.algorithm, compact.algorithm);
        if (compact.level == ParallelismLevel::InnerDoall &&
            compact.algorithm == AlgorithmUsed::CyclicDoall) {
            EXPECT_LE(ablation::prologue_rows(compact.retiming),
                      ablation::prologue_rows(plain.retiming));
        }
    }
}

TEST(Compact, DriverOptionOnCarriedChain) {
    Mldg g;
    for (int v = 0; v < 6; ++v) g.add_node("L" + std::to_string(v));
    for (int v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1, {{2, 0}});
    g.add_edge(5, 0, {{2, 0}});
    const FusionPlan compact = plan_fusion(g, PlanOptions{.compact_prologue = true});
    EXPECT_EQ(ablation::prologue_rows(compact.retiming), 0);
}

TEST(Compact, RejectsBadInputs) {
    EXPECT_THROW((void)acyclic_doall_fusion_compact(workloads::fig2_graph()), Error);
}

}  // namespace
}  // namespace lf
