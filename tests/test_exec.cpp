// Execution-engine tests: arrays, the store, and -- most importantly -- the
// golden-output equivalence of original vs. transformed programs under
// every engine, on the gallery workloads and on randomized programs.

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "exec/engines.hpp"
#include "exec/equivalence.hpp"
#include "ir/parser.hpp"
#include "support/diagnostics.hpp"
#include "transform/fused_program.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"
#include "workloads/sources.hpp"

namespace lf::exec {
namespace {

TEST(Array2D, BoundsCheckedAccess) {
    Array2D a(-2, 5, -1, 3);
    a.set(-2, -1, 7.0);
    a.set(5, 3, 8.0);
    EXPECT_DOUBLE_EQ(a.at(-2, -1), 7.0);
    EXPECT_DOUBLE_EQ(a.at(5, 3), 8.0);
    EXPECT_TRUE(a.in_bounds(0, 0));
    EXPECT_FALSE(a.in_bounds(6, 0));
    EXPECT_THROW((void)a.at(6, 0), Error);
    EXPECT_THROW(a.set(0, 4, 1.0), Error);
    EXPECT_EQ(a.size(), 8 * 5);
}

TEST(ArrayStore, DeterministicInitialization) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const Domain dom{6, 6};
    ArrayStore s1(p, dom), s2(p, dom);
    for (const std::string& name : p.arrays()) {
        for (std::int64_t i = -2; i <= dom.n + 2; ++i) {
            for (std::int64_t j = -2; j <= dom.m + 2; ++j) {
                ASSERT_DOUBLE_EQ(s1.load(name, i, j), s2.load(name, i, j));
            }
        }
    }
    EXPECT_GT(s1.loads(), 0);
}

TEST(ArrayStore, BoundaryValuesVaryAcrossCellsAndArrays) {
    EXPECT_NE(ArrayStore::boundary_value("a", 0, 0), ArrayStore::boundary_value("a", 0, 1));
    EXPECT_NE(ArrayStore::boundary_value("a", 0, 0), ArrayStore::boundary_value("b", 0, 0));
    const double v = ArrayStore::boundary_value("x", -5, 17);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
}

TEST(ArrayStore, TraceRecordsAccesses) {
    const ir::Program p = ir::parse_program("program t { loop A { a[i][j] = b[i-1][j]; } }");
    const Domain dom{2, 2};
    ArrayStore store(p, dom);
    store.enable_tracing();
    (void)run_original(p, dom, store);
    // 9 instances, each 1 load + 1 store.
    ASSERT_EQ(store.trace().size(), 18u);
    EXPECT_FALSE(store.trace()[0].is_write);
    EXPECT_TRUE(store.trace()[1].is_write);
    EXPECT_NE(store.trace()[0].array_id, store.trace()[1].array_id);
}

TEST(ArrayStore, OrderCheckingFlagsConsumerBeforeProducer) {
    const ir::Program p = ir::parse_program("program t { loop A { a[i][j] = 1.0; } }");
    const Domain dom{1, 1};
    ArrayStore store(p, dom);
    store.enable_order_checking();
    (void)store.load("a", 0, 0);     // read before the write below
    store.store("a", 0, 0, 2.0);     // violation
    store.store("a", 1, 1, 2.0);     // fine: never read early
    EXPECT_EQ(store.order_violations(), 1);
}

TEST(RunOriginal, BarrierCountIsLoopsTimesRows) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const Domain dom{9, 5};
    ArrayStore store(p, dom);
    const ExecStats stats = run_original(p, dom, store);
    EXPECT_EQ(stats.barriers, 4 * dom.rows());
    EXPECT_EQ(stats.instances, 5 * dom.points());  // 5 statements across loops
}

struct WorkloadCase {
    const char* id;
    std::string_view source;
};

class EquivalenceTest : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(EquivalenceTest, RowwiseEngineMatchesOriginal) {
    const ir::Program p = ir::parse_program(GetParam().source);
    const auto result = verify_fusion(p, Domain{17, 13}, EngineKind::FusedRowwise);
    EXPECT_TRUE(result.equivalent) << result.detail;
}

TEST_P(EquivalenceTest, PeeledEngineMatchesOriginal) {
    const ir::Program p = ir::parse_program(GetParam().source);
    const auto result = verify_fusion(p, Domain{17, 13}, EngineKind::Peeled);
    EXPECT_TRUE(result.equivalent) << result.detail;
}

TEST_P(EquivalenceTest, PeeledEngineSurvivesDegenerateDomains) {
    // Domains smaller than the retiming spread exercise the fallback path
    // (no steady state at all).
    const ir::Program p = ir::parse_program(GetParam().source);
    for (const Domain dom : {Domain{0, 0}, Domain{1, 2}, Domain{2, 1}, Domain{3, 3}}) {
        const auto result = verify_fusion(p, dom, EngineKind::Peeled);
        EXPECT_TRUE(result.equivalent)
            << "n=" << dom.n << " m=" << dom.m << ": " << result.detail;
    }
}

TEST_P(EquivalenceTest, WavefrontEngineMatchesOriginal) {
    const ir::Program p = ir::parse_program(GetParam().source);
    const auto result = verify_fusion(p, Domain{17, 13}, EngineKind::Wavefront);
    EXPECT_TRUE(result.equivalent) << result.detail;
}

TEST_P(EquivalenceTest, ThreadedEngineMatchesOriginal) {
    const ir::Program p = ir::parse_program(GetParam().source);
    const auto result = verify_fusion(p, Domain{17, 13}, EngineKind::Threaded, 3);
    EXPECT_TRUE(result.equivalent) << result.detail;
}

TEST_P(EquivalenceTest, FusionReducesBarriers) {
    const ir::Program p = ir::parse_program(GetParam().source);
    const auto result = verify_fusion(p, Domain{40, 40}, EngineKind::FusedRowwise);
    ASSERT_TRUE(result.equivalent) << result.detail;
    EXPECT_LT(result.transformed.barriers, result.original.barriers);
    EXPECT_EQ(result.transformed.instances, result.original.instances);
}

INSTANTIATE_TEST_SUITE_P(
    Gallery, EquivalenceTest,
    ::testing::Values(WorkloadCase{"fig2", lf::workloads::sources::kFig2},
                      WorkloadCase{"fig8", lf::workloads::sources::kFig8},
                      WorkloadCase{"jacobi", lf::workloads::sources::kJacobiPair},
                      WorkloadCase{"iir", lf::workloads::sources::kIirChain}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) { return info.param.id; });

TEST(Equivalence, Fig2FusedBarriersMatchPaperClaim) {
    // Four loops, n+1 outer iterations: 4(n+1) barriers before fusion.
    // After Algorithm 4 the fused rows cover [point_i_lo, point_i_hi]:
    // retimings {0,0,-1,-1} spread the range by one row -> n+2 barriers.
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const Domain dom{99, 20};
    const auto result = verify_fusion(p, dom, EngineKind::FusedRowwise);
    ASSERT_TRUE(result.equivalent) << result.detail;
    EXPECT_EQ(result.original.barriers, 4 * (dom.n + 1));
    EXPECT_EQ(result.transformed.barriers, dom.n + 2);
}

class RandomProgramEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramEquivalence, AllEnginesMatchOriginal) {
    Rng rng(GetParam());
    const ir::Program p = workloads::random_program(rng);
    const Domain dom{11, 9};
    for (const EngineKind engine : {EngineKind::FusedRowwise, EngineKind::Peeled,
                                    EngineKind::Wavefront, EngineKind::Threaded}) {
        const auto result = verify_fusion(p, dom, engine, 2);
        EXPECT_TRUE(result.equivalent)
            << "engine " << static_cast<int>(engine) << ": " << result.detail << "\n"
            << p.str();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramEquivalence,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(Wavefront, OrderCheckingPassesOnIirChain) {
    // The wavefront schedule must never run a consumer before its producer;
    // the order-checking store verifies this mechanically.
    const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
    const Mldg g = analysis::build_mldg(p);
    const FusionPlan plan = plan_fusion(g);
    ASSERT_EQ(plan.level, ParallelismLevel::Hyperplane);
    const auto fp = transform::fuse_program(p, plan);
    const Domain dom{12, 12};
    ArrayStore store(p, dom);
    store.enable_order_checking();
    (void)run_wavefront(fp, dom, store);
    EXPECT_EQ(store.order_violations(), 0);
}

TEST(Threaded, RejectsNonDoallPlansAndTracing) {
    const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
    const Mldg g = analysis::build_mldg(p);
    const FusionPlan plan = plan_fusion(g);
    const auto fp = transform::fuse_program(p, plan);
    ArrayStore store(p, Domain{4, 4});
    EXPECT_THROW((void)run_fused_threaded(fp, Domain{4, 4}, store, 2), Error);
}

}  // namespace
}  // namespace lf::exec
