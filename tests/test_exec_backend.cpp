// The crash-contained native execution backend (src/exec/):
//
//   * result-pipe codec -- round trips, incremental delivery, truncation,
//     bit-flip and oversized-length fuzz (mirroring the test_net.cpp wire
//     drills): arbitrary garbage must yield a sticky typed error or
//     NeedMore, never a crash or a frame with different content;
//   * kernel compiler -- content-addressed cache hits, quarantine-by-rename
//     of corrupt objects followed by healing recompiles, typed compile
//     failures, and the exec.compile fault point;
//   * sandbox -- a real emitted kernel completes with the interpreter's
//     checksum; deliberately crashing / spinning / nonzero-rc kernels end
//     as typed contained outcomes while this (parent) process survives;
//     exec.spawn / exec.run / exec.timeout / exec.oom drill the containment
//     paths without needing a compiler;
//   * differential verification -- native_check over the 2-D gallery and
//     the depth-d pipelines reports Verified only when the native run
//     reproduces the interpreter checksum bit-for-bit;
//   * ABI v2 parallel entry -- lf_kernel_run_par is bit-identical to the
//     serial kernel and the interpreter at 1/2/4 lanes on every workload
//     (the thread-count-invariance rule), RLIMIT_AS scales with the
//     requested lane count, a crashing or wedging lane is contained as a
//     typed outcome, and the per-flag-set compiler probe memoizes both
//     hits and misses;
//   * emission hygiene -- every gallery kernel and stand-alone program
//     compiles under -Wall -Wextra -Werror, with and without -fopenmp.

#include <gtest/gtest.h>

#include <signal.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <string_view>

#include "analysis/dependence.hpp"
#include "exec/compile.hpp"
#include "exec/native.hpp"
#include "exec/runner.hpp"
#include "fusion/driver.hpp"
#include "fusion/multidim.hpp"
#include "ir/parser.hpp"
#include "analysis/dependence.hpp"
#include "front/parse.hpp"
#include "support/cemit.hpp"
#include "support/faultpoint.hpp"
#include "svc/manifest.hpp"
#include "svc/report.hpp"
#include "svc/service.hpp"
#include "transform/codegen_c.hpp"
#include "transform/codegen_nd.hpp"
#include "transform/fused_program.hpp"
#include "workloads/sources.hpp"

namespace lf::exec {
namespace {

class ExecBackendTest : public ::testing::Test {
  protected:
    void SetUp() override { faultpoint::reset(); }
    void TearDown() override { faultpoint::reset(); }

    /// Fresh cache directory under the test temp dir, unique per use.
    std::string fresh_cache_dir(const std::string& tag) {
        const std::string dir =
            std::string(::testing::TempDir()) + "/lf_exec_" + tag + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this) & 0xffff);
        std::filesystem::remove_all(dir);
        return dir;
    }
};

bool have_cc() { return KernelCompiler::compiler_available("cc"); }

KernelResult sample_result() {
    KernelResult r;
    r.checksum_original = 3.25;
    r.checksum_fused = 3.25;
    r.mismatches = 0;
    r.ns_original = 1200;
    r.ns_fused = 800;
    return r;
}

// ---- Result-pipe codec ----

TEST_F(ExecBackendTest, ResultFrameRoundTrips) {
    const KernelResult in = sample_result();
    PipeDecoder dec;
    dec.feed(encode_result_frame(in));
    ASSERT_EQ(dec.poll(), PipeDecoder::Status::Ready);
    EXPECT_EQ(dec.type(), kPipeTypeResult);
    ASSERT_EQ(dec.payload().size(), sizeof(KernelResult));
    KernelResult out;
    std::memcpy(&out, dec.payload().data(), sizeof(out));
    EXPECT_EQ(out.checksum_original, in.checksum_original);
    EXPECT_EQ(out.mismatches, in.mismatches);
    EXPECT_EQ(out.ns_fused, in.ns_fused);
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST_F(ExecBackendTest, ErrorFrameRoundTripsAndClamps) {
    PipeDecoder dec;
    dec.feed(encode_error_frame("dlopen failed: not an ELF"));
    ASSERT_EQ(dec.poll(), PipeDecoder::Status::Ready);
    EXPECT_EQ(dec.type(), kPipeTypeError);
    EXPECT_EQ(dec.payload(), "dlopen failed: not an ELF");

    // Oversized text is clamped by the encoder, never rejected by the decoder.
    const std::string big(kMaxErrorPayload + 500, 'e');
    PipeDecoder dec2;
    dec2.feed(encode_error_frame(big));
    ASSERT_EQ(dec2.poll(), PipeDecoder::Status::Ready);
    EXPECT_EQ(dec2.payload().size(), kMaxErrorPayload);
}

TEST_F(ExecBackendTest, ByteAtATimeDeliveryDecodes) {
    const std::string bytes = encode_result_frame(sample_result());
    PipeDecoder dec;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        dec.feed(std::string_view(&bytes[i], 1));
        ASSERT_EQ(dec.poll(), PipeDecoder::Status::NeedMore) << "at byte " << i;
    }
    dec.feed(std::string_view(&bytes[bytes.size() - 1], 1));
    ASSERT_EQ(dec.poll(), PipeDecoder::Status::Ready);
}

TEST_F(ExecBackendTest, TwoFramesInOneFeed) {
    PipeDecoder dec;
    dec.feed(encode_error_frame("first") + encode_result_frame(sample_result()));
    ASSERT_EQ(dec.poll(), PipeDecoder::Status::Ready);
    EXPECT_EQ(dec.type(), kPipeTypeError);
    ASSERT_EQ(dec.poll(), PipeDecoder::Status::Ready);
    EXPECT_EQ(dec.type(), kPipeTypeResult);
    EXPECT_EQ(dec.poll(), PipeDecoder::Status::NeedMore);
}

TEST_F(ExecBackendTest, TruncatedStreamsNeverProduceAFrame) {
    const std::string bytes = encode_result_frame(sample_result());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        PipeDecoder dec;
        dec.feed(std::string_view(bytes.data(), cut));
        EXPECT_EQ(dec.poll(), PipeDecoder::Status::NeedMore) << "cut at " << cut;
    }
}

TEST_F(ExecBackendTest, BitFlipsNeverYieldADifferentFrame) {
    const std::string bytes = encode_result_frame(sample_result());
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
            PipeDecoder dec;
            dec.feed(mutated);
            const PipeDecoder::Status s = dec.poll();
            if (s == PipeDecoder::Status::Ready) {
                // A flip that still decodes must decode to *identical* bytes
                // (possible only when... it is not; document the invariant).
                EXPECT_EQ(dec.payload(),
                          bytes.substr(kPipeHeaderSize, sizeof(KernelResult)))
                    << "flip at byte " << pos << " bit " << bit
                    << " produced a frame with different content";
            }
        }
    }
}

TEST_F(ExecBackendTest, OversizedErrorLengthIsATypedError) {
    std::string frame = encode_error_frame("x");
    // Rewrite payload_len (little-endian at offset 8) to an absurd value.
    const std::uint32_t huge = 1u << 30;
    for (int k = 0; k < 4; ++k) frame[8 + k] = static_cast<char>((huge >> (8 * k)) & 0xff);
    PipeDecoder dec;
    dec.feed(frame);
    EXPECT_EQ(dec.poll(), PipeDecoder::Status::Error);
    EXPECT_NE(dec.detail().find("oversized"), std::string::npos);
    EXPECT_TRUE(dec.failed());
}

TEST_F(ExecBackendTest, WrongResultLengthMagicVersionAndTypeAreTypedErrors) {
    const std::string good = encode_result_frame(sample_result());
    {
        std::string f = good;
        f[8] = 41;  // result payload must be exactly sizeof(KernelResult)
        PipeDecoder dec;
        dec.feed(f);
        EXPECT_EQ(dec.poll(), PipeDecoder::Status::Error);
    }
    {
        std::string f = good;
        f[0] = 'X';
        PipeDecoder dec;
        dec.feed(f);
        EXPECT_EQ(dec.poll(), PipeDecoder::Status::Error);
        EXPECT_NE(dec.detail().find("magic"), std::string::npos);
    }
    {
        std::string f = good;
        f[4] = 9;
        PipeDecoder dec;
        dec.feed(f);
        EXPECT_EQ(dec.poll(), PipeDecoder::Status::Error);
        EXPECT_NE(dec.detail().find("version"), std::string::npos);
    }
    {
        std::string f = good;
        f[6] = 77;
        PipeDecoder dec;
        dec.feed(f);
        EXPECT_EQ(dec.poll(), PipeDecoder::Status::Error);
        EXPECT_NE(dec.detail().find("type"), std::string::npos);
    }
}

TEST_F(ExecBackendTest, ErrorsAreSticky) {
    PipeDecoder dec;
    dec.feed("GARBAGEGARBAGEGARBAGE");
    ASSERT_EQ(dec.poll(), PipeDecoder::Status::Error);
    dec.feed(encode_result_frame(sample_result()));  // dropped
    EXPECT_EQ(dec.poll(), PipeDecoder::Status::Error);
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST_F(ExecBackendTest, GarbageFloodCannotBufferUnboundedly) {
    PipeDecoder dec;
    const std::string flood(64 * 1024, 'A');
    dec.feed(flood);
    EXPECT_EQ(dec.poll(), PipeDecoder::Status::Error);
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST_F(ExecBackendTest, RandomGarbageFuzzNeverCrashes) {
    std::mt19937 rng(0x5eed);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> len(1, 200);
    for (int round = 0; round < 300; ++round) {
        PipeDecoder dec;
        std::string noise(static_cast<std::size_t>(len(rng)), '\0');
        for (char& c : noise) c = static_cast<char>(byte(rng));
        dec.feed(noise);
        for (int polls = 0; polls < 4; ++polls) {
            const PipeDecoder::Status s = dec.poll();
            if (s != PipeDecoder::Status::Ready) break;
        }
        SUCCEED();
    }
}

// ---- Kernel compiler ----

/// A minimal but complete kernel library source (no emitted program needed).
std::string tiny_kernel_source(const std::string& salt = "") {
    return "#include <stdint.h>\n"
           "typedef struct { double checksum_original; double checksum_fused;\n"
           "  int64_t mismatches; int64_t ns_original; int64_t ns_fused; }\n"
           "  lf_kernel_result;\n"
           "/* " + salt + " */\n"
           "int lf_kernel_run(lf_kernel_result* out) {\n"
           "  out->checksum_original = 4.5; out->checksum_fused = 4.5;\n"
           "  out->mismatches = 0; out->ns_original = 10; out->ns_fused = 5;\n"
           "  return 0;\n"
           "}\n";
}

TEST_F(ExecBackendTest, CompileFaultFailsWithoutInvokingAnything) {
    faultpoint::arm("exec.compile");
    KernelCompiler compiler;  // no compiler needed: the fault fires first
    const auto r = compiler.compile(tiny_kernel_source());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::Internal);
    EXPECT_NE(r.status().message().find("exec.compile"), std::string::npos);
    EXPECT_EQ(faultpoint::hits("exec.compile"), 1u);
    EXPECT_EQ(compiler.stats().failures, 1u);
}

TEST_F(ExecBackendTest, KeyReflectsSourceCompilerAndFlags) {
    CompileOptions a;
    CompileOptions b;
    b.extra_flags = {"-Wall"};
    CompileOptions c;
    c.openmp = true;
    const std::string src = tiny_kernel_source();
    EXPECT_NE(KernelCompiler::key_of(src, a), KernelCompiler::key_of(src, b));
    EXPECT_NE(KernelCompiler::key_of(src, a), KernelCompiler::key_of(src, c));
    EXPECT_NE(KernelCompiler::key_of(src, a),
              KernelCompiler::key_of(src + " ", a));
    EXPECT_EQ(KernelCompiler::key_of(src, a), KernelCompiler::key_of(src, a));
}

TEST_F(ExecBackendTest, CompilesCachesAndServesFromCache) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("cache");
    KernelCompiler compiler(opts);
    const auto first = compiler.compile(tiny_kernel_source());
    ASSERT_TRUE(first.ok()) << first.status().str();
    EXPECT_FALSE(first.value().from_cache);
    const auto second = compiler.compile(tiny_kernel_source());
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.value().from_cache);
    EXPECT_EQ(second.value().path, first.value().path);
    EXPECT_EQ(compiler.stats().compiles, 1u);
    EXPECT_EQ(compiler.stats().cache_hits, 1u);
}

TEST_F(ExecBackendTest, CorruptCacheEntryIsQuarantinedAndHealed) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("quarantine");
    KernelCompiler compiler(opts);
    const auto first = compiler.compile(tiny_kernel_source());
    ASSERT_TRUE(first.ok()) << first.status().str();

    // Flip a byte in the middle of the cached object: the footer checksum
    // no longer matches, so the next lookup must quarantine, not dlopen.
    {
        std::fstream f(first.value().path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(100);
        f.put('\xff');
    }
    const auto healed = compiler.compile(tiny_kernel_source());
    ASSERT_TRUE(healed.ok()) << healed.status().str();
    EXPECT_FALSE(healed.value().from_cache) << "corrupt entry must not be served";
    EXPECT_EQ(compiler.stats().quarantined, 1u);
    EXPECT_EQ(compiler.stats().compiles, 2u);

    // The evidence file is kept beside the healed object.
    bool quarantine_file = false;
    for (const auto& e : std::filesystem::directory_iterator(compiler.cache_dir())) {
        if (e.path().filename().string().find(".quarantined.") != std::string::npos) {
            quarantine_file = true;
        }
    }
    EXPECT_TRUE(quarantine_file);

    // And the healed object still runs.
    const RunOutcome run = run_kernel(healed.value().path);
    EXPECT_EQ(run.state, RunState::Completed) << run.detail;
}

TEST_F(ExecBackendTest, CompileFailureIsTypedWithExcerpt) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("badsrc");
    KernelCompiler compiler(opts);
    const auto r = compiler.compile("int broken = ;\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::Internal);
    EXPECT_NE(r.status().message().find("kernel compile failed"), std::string::npos);
    EXPECT_EQ(compiler.stats().failures, 1u);
}

TEST_F(ExecBackendTest, MissingCompilerIsTypedNotFatal) {
    CompileOptions opts;
    opts.cc = "lf-no-such-compiler-exists";
    opts.cache_dir = fresh_cache_dir("nocc");
    KernelCompiler compiler(opts);
    const auto r = compiler.compile(tiny_kernel_source());
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("not found on PATH"), std::string::npos);
    EXPECT_FALSE(KernelCompiler::compiler_available(opts.cc));
}

// ---- Sandbox ----

TEST_F(ExecBackendTest, MissingObjectIsLoadFailedNotACrash) {
    const RunOutcome out = run_kernel("/nonexistent/kernel.so");
    EXPECT_EQ(out.state, RunState::LoadFailed);
    EXPECT_NE(out.detail.find("dlopen"), std::string::npos);
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::Internal);
}

TEST_F(ExecBackendTest, SpawnFaultFailsBeforeForking) {
    faultpoint::arm("exec.spawn");
    const RunOutcome out = run_kernel("/nonexistent/kernel.so");
    EXPECT_EQ(out.state, RunState::SpawnFailed);
    EXPECT_NE(out.detail.find("exec.spawn"), std::string::npos);
    EXPECT_EQ(faultpoint::hits("exec.spawn"), 1u);
}

TEST_F(ExecBackendTest, CrashDrillIsContained) {
    faultpoint::arm("exec.run");
    const RunOutcome out = run_kernel("/nonexistent/kernel.so");
    EXPECT_EQ(out.state, RunState::Crashed);
    EXPECT_EQ(out.signal, SIGSEGV);
    EXPECT_NE(out.detail.find("signal"), std::string::npos);
    EXPECT_EQ(faultpoint::hits("exec.run"), 1u);
    // The parent (this test) is alive to assert all of the above.
}

TEST_F(ExecBackendTest, SpinDrillHitsTheWatchdog) {
    faultpoint::arm("exec.timeout");
    SandboxLimits limits;
    limits.wall_ms = 300;
    limits.term_grace_ms = 100;
    const RunOutcome out = run_kernel("/nonexistent/kernel.so", limits);
    EXPECT_EQ(out.state, RunState::Timeout);
    EXPECT_NE(out.detail.find("watchdog"), std::string::npos);
    EXPECT_EQ(out.status().code(), StatusCode::ResourceExhausted);
    EXPECT_EQ(faultpoint::hits("exec.timeout"), 1u);
}

TEST_F(ExecBackendTest, OomDrillDiesOnTheAddressSpaceLimit) {
    faultpoint::arm("exec.oom");
    SandboxLimits limits;
    limits.address_space_bytes = 256 << 20;
    limits.wall_ms = 30'000;  // OOM must come from RLIMIT_AS, not the watchdog
    const RunOutcome out = run_kernel("/nonexistent/kernel.so", limits);
    EXPECT_EQ(out.state, RunState::Crashed);
    EXPECT_EQ(out.signal, SIGABRT);
    EXPECT_EQ(faultpoint::hits("exec.oom"), 1u);
}

TEST_F(ExecBackendTest, RealKernelCompletesWithBothChecksums) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("real");
    KernelCompiler compiler(opts);
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    const Domain dom{12, 12};
    const auto compiled =
        compiler.compile(transform::emit_c_kernel_library(p, transform::fuse_program(p, plan), dom));
    ASSERT_TRUE(compiled.ok()) << compiled.status().str();
    const RunOutcome out = run_kernel(compiled.value().path);
    ASSERT_EQ(out.state, RunState::Completed) << out.detail;
    EXPECT_EQ(out.result.mismatches, 0);
    EXPECT_EQ(cemit::format_checksum(out.result.checksum_original),
              transform::expected_c_checksum(p, dom));
    EXPECT_EQ(out.result.checksum_original, out.result.checksum_fused);
    EXPECT_GE(out.result.ns_original, 0);
    EXPECT_GE(out.result.ns_fused, 0);
}

TEST_F(ExecBackendTest, SegfaultingKernelIsContained) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("segv");
    KernelCompiler compiler(opts);
    const auto compiled = compiler.compile(
        "int lf_kernel_run(void* out) {\n"
        "  (void)out;\n"
        "  volatile int* p = (volatile int*)0;\n"
        "  *p = 1;\n"
        "  return 0;\n"
        "}\n");
    ASSERT_TRUE(compiled.ok()) << compiled.status().str();
    const RunOutcome out = run_kernel(compiled.value().path);
    EXPECT_EQ(out.state, RunState::Crashed) << out.detail;
    EXPECT_EQ(out.signal, SIGSEGV);
    EXPECT_EQ(out.status().code(), StatusCode::Internal);
}

TEST_F(ExecBackendTest, SpinningKernelIsKilledByTheWatchdog) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("spin");
    KernelCompiler compiler(opts);
    const auto compiled = compiler.compile(
        "int lf_kernel_run(void* out) {\n"
        "  (void)out;\n"
        "  volatile int spin = 1;\n"
        "  while (spin) {}\n"
        "  return 0;\n"
        "}\n");
    ASSERT_TRUE(compiled.ok()) << compiled.status().str();
    SandboxLimits limits;
    limits.wall_ms = 300;
    limits.term_grace_ms = 100;
    const RunOutcome out = run_kernel(compiled.value().path, limits);
    EXPECT_EQ(out.state, RunState::Timeout) << out.detail;
    EXPECT_EQ(out.status().code(), StatusCode::ResourceExhausted);
}

TEST_F(ExecBackendTest, NonzeroKernelRcIsExitNonzero) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("rc");
    KernelCompiler compiler(opts);
    const auto compiled =
        compiler.compile("int lf_kernel_run(void* out) { (void)out; return 7; }\n");
    ASSERT_TRUE(compiled.ok()) << compiled.status().str();
    const RunOutcome out = run_kernel(compiled.value().path);
    EXPECT_EQ(out.state, RunState::ExitNonzero) << out.detail;
    EXPECT_NE(out.detail.find("7"), std::string::npos);
}

TEST_F(ExecBackendTest, MissingSymbolIsLoadFailed) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("nosym");
    KernelCompiler compiler(opts);
    const auto compiled = compiler.compile("int lf_not_the_entry(void) { return 0; }\n");
    ASSERT_TRUE(compiled.ok()) << compiled.status().str();
    const RunOutcome out = run_kernel(compiled.value().path);
    EXPECT_EQ(out.state, RunState::LoadFailed) << out.detail;
    EXPECT_NE(out.detail.find("lf_kernel_run"), std::string::npos);
}

// ---- Differential verification ----

struct GalleryCase {
    const char* id;
    std::string_view source;
};

const GalleryCase kGallery[] = {
    {"fig2", workloads::sources::kFig2},
    {"fig8", workloads::sources::kFig8},
    {"jacobi", workloads::sources::kJacobiPair},
    {"iir", workloads::sources::kIirChain},
};

TEST_F(ExecBackendTest, GalleryVerifiesNativelyAgainstTheInterpreter) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("gallery");
    KernelCompiler compiler(opts);
    const Domain dom{12, 12};
    for (const auto& wc : kGallery) {
        const ir::Program p = ir::parse_program(wc.source);
        const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
        const NativeCheck nc = native_check(p, plan, dom, compiler);
        EXPECT_EQ(nc.outcome, NativeOutcome::Verified)
            << wc.id << ": " << to_string(nc.outcome) << " -- " << nc.detail;
        EXPECT_FALSE(nc.from_cache) << wc.id;
    }
    // The same checks again are all content-addressed cache hits.
    for (const auto& wc : kGallery) {
        const ir::Program p = ir::parse_program(wc.source);
        const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
        const NativeCheck nc = native_check(p, plan, dom, compiler);
        EXPECT_TRUE(nc.verified()) << wc.id << ": " << nc.detail;
        EXPECT_TRUE(nc.from_cache) << wc.id;
    }
    EXPECT_EQ(compiler.stats().cache_hits, 4u);
}

TEST_F(ExecBackendTest, NdPipelinesVerifyNatively) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("nd");
    KernelCompiler compiler(opts);
    {
        const front::BasicProgram<VecN> p = front::parse_basic_program<VecN>(workloads::sources::kVolume3d);
        const NdFusionPlan plan = plan_fusion_nd(analysis::build_mldg_nd(p));
        const NativeCheck nc = native_check_nd(p, plan, MdDomain{{6, 5, 7}}, compiler);
        EXPECT_EQ(nc.outcome, NativeOutcome::Verified) << nc.detail;
    }
    {
        const front::BasicProgram<VecN> p = front::parse_basic_program<VecN>(workloads::sources::kHyper4d);
        const NdFusionPlan plan = plan_fusion_nd(analysis::build_mldg_nd(p));
        const NativeCheck nc = native_check_nd(p, plan, MdDomain{{3, 3, 3, 4}}, compiler);
        EXPECT_EQ(nc.outcome, NativeOutcome::Verified) << nc.detail;
    }
}

TEST_F(ExecBackendTest, UnfusedFallbackPlansAreSkippedNotFailed) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    TryPlanOptions opts;
    opts.distribution_only = true;
    const auto plan = try_plan_fusion(analysis::build_mldg(p), opts);
    ASSERT_TRUE(plan.ok()) << plan.status().str();
    ASSERT_EQ(plan.value().algorithm, AlgorithmUsed::DistributionFallback);
    KernelCompiler compiler;  // never invoked
    const NativeCheck nc = native_check(p, plan.value(), Domain{12, 12}, compiler);
    EXPECT_EQ(nc.outcome, NativeOutcome::Skipped);
    EXPECT_FALSE(is_native_failure(nc.outcome));
}

TEST_F(ExecBackendTest, MissingCompilerMeansUnavailableNotFailure) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    CompileOptions opts;
    opts.cc = "lf-no-such-compiler-exists";
    KernelCompiler compiler(opts);
    const NativeCheck nc = native_check(p, plan, Domain{12, 12}, compiler);
    EXPECT_EQ(nc.outcome, NativeOutcome::Unavailable);
    EXPECT_FALSE(is_native_failure(nc.outcome));
}

TEST_F(ExecBackendTest, InjectedCompileFaultQuarantinesTheCheck) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    faultpoint::arm("exec.compile");
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    KernelCompiler compiler;
    const NativeCheck nc = native_check(p, plan, Domain{12, 12}, compiler);
    EXPECT_EQ(nc.outcome, NativeOutcome::CompileFailed);
    EXPECT_TRUE(is_native_failure(nc.outcome));
}

// ---- ABI v2 parallel entry ----

TEST_F(ExecBackendTest, AddressSpaceLimitScalesWithThreadCount) {
    const SandboxLimits base;
    const SandboxLimits four = base.for_threads(4);
    EXPECT_EQ(four.address_space_bytes,
              base.address_space_bytes + 3 * SandboxLimits::kPerThreadAddressSpaceBytes);
    // Budgets other than the address space are untouched.
    EXPECT_EQ(four.wall_ms, base.wall_ms);
    EXPECT_EQ(four.cpu_seconds, base.cpu_seconds);
    // One lane (or nonsense) leaves the serial cap alone.
    EXPECT_EQ(base.for_threads(1).address_space_bytes, base.address_space_bytes);
    EXPECT_EQ(base.for_threads(0).address_space_bytes, base.address_space_bytes);
    // An unlimited cap (<= 0) stays unlimited rather than becoming finite.
    SandboxLimits unlimited;
    unlimited.address_space_bytes = 0;
    EXPECT_EQ(unlimited.for_threads(8).address_space_bytes, 0);
}

TEST_F(ExecBackendTest, ParallelEntryIsBitIdenticalToSerialAtEveryLaneCount) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("parbits");
    KernelCompiler compiler(opts);
    const Domain dom{24, 24};
    for (const auto& wc : kGallery) {
        const ir::Program p = ir::parse_program(wc.source);
        const transform::FusedProgram fp =
            transform::fuse_program(p, plan_fusion(analysis::build_mldg(p)));
        const auto compiled =
            compiler.compile(transform::emit_c_kernel_library(p, fp, dom));
        ASSERT_TRUE(compiled.ok()) << wc.id << ": " << compiled.status().str();
        const RunOutcome serial = run_kernel(compiled.value().path);
        ASSERT_EQ(serial.state, RunState::Completed) << wc.id << ": " << serial.detail;
        ASSERT_EQ(serial.result.mismatches, 0) << wc.id;
        for (const int threads : {1, 2, 4}) {
            KernelParams params;
            params.threads = threads;
            const RunOutcome par = run_kernel_par(compiled.value().path, params);
            ASSERT_EQ(par.state, RunState::Completed)
                << wc.id << " x" << threads << ": " << par.detail;
            EXPECT_EQ(par.result.mismatches, 0) << wc.id << " x" << threads;
            // Bitwise, not value, equality: the invariance rule.
            EXPECT_EQ(std::memcmp(&par.result.checksum_fused,
                                  &serial.result.checksum_fused, sizeof(double)),
                      0)
                << wc.id << " x" << threads << " changed the fused checksum";
            EXPECT_EQ(std::memcmp(&par.result.checksum_original,
                                  &serial.result.checksum_original, sizeof(double)),
                      0)
                << wc.id << " x" << threads;
        }
    }
}

TEST_F(ExecBackendTest, ParallelAdmissionVerifiesGalleryAndNdAtEveryLaneCount) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("paradmit");
    KernelCompiler compiler(opts);
    const Domain dom{12, 12};
    for (const int threads : {2, 4}) {
        KernelParams params;
        params.threads = threads;
        for (const auto& wc : kGallery) {
            const ir::Program p = ir::parse_program(wc.source);
            const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
            const NativeCheck nc = native_check(p, plan, dom, compiler, {}, params);
            EXPECT_EQ(nc.outcome, NativeOutcome::Verified)
                << wc.id << " x" << threads << ": " << nc.detail;
            EXPECT_EQ(nc.par_threads, threads) << wc.id;
        }
        for (const std::string_view source :
             {workloads::sources::kVolume3d, workloads::sources::kHyper4d}) {
            const auto p = front::parse_basic_program<VecN>(source);
            const NdFusionPlan plan = plan_fusion_nd(analysis::build_mldg_nd(p));
            MdDomain mdom;
            mdom.ext.assign(static_cast<std::size_t>(p.dim), 6);
            const NativeCheck nc =
                native_check_nd(p, plan, mdom, compiler, {}, params);
            EXPECT_EQ(nc.outcome, NativeOutcome::Verified)
                << "nd x" << threads << ": " << nc.detail;
            EXPECT_EQ(nc.par_threads, threads);
        }
    }
    // Explicit tile / serial-cutoff settings must not change results either.
    {
        KernelParams params;
        params.threads = 4;
        params.tile = 3;
        params.serial_cutoff = 5;
        const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
        const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
        const NativeCheck nc = native_check(p, plan, dom, compiler, {}, params);
        EXPECT_EQ(nc.outcome, NativeOutcome::Verified) << nc.detail;
        EXPECT_EQ(nc.par_tile, 3);
    }
}

TEST_F(ExecBackendTest, EightLanesCompleteUnderTheScaledAddressSpaceCap) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    // Regression: under the serial RLIMIT_AS a multithreaded child fails in
    // pthread_create (8 MiB reserved stack per lane) and silently degrades.
    // run_kernel_par scales the cap via for_threads; with a deliberately
    // tight serial cap the 8-lane run must still complete and agree.
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("parlimits");
    KernelCompiler compiler(opts);
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const transform::FusedProgram fp =
        transform::fuse_program(p, plan_fusion(analysis::build_mldg(p)));
    const auto compiled =
        compiler.compile(transform::emit_c_kernel_library(p, fp, Domain{16, 16}));
    ASSERT_TRUE(compiled.ok()) << compiled.status().str();
    SandboxLimits limits;
    limits.address_space_bytes = 192 << 20;  // enough for data, tight for stacks
    KernelParams params;
    params.threads = 8;
    const RunOutcome out = run_kernel_par(compiled.value().path, params, limits);
    ASSERT_EQ(out.state, RunState::Completed) << out.detail;
    EXPECT_EQ(out.result.mismatches, 0);
}

TEST_F(ExecBackendTest, CrashingParallelLaneIsContained) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("parsegv");
    KernelCompiler compiler(opts);
    const auto compiled = compiler.compile(
        "#include <pthread.h>\n"
        "#include <stddef.h>\n"
        "typedef struct { int threads; int tile; long long cutoff; }"
        " lf_kernel_params;\n"
        "static void* lf_lane(void* arg) {\n"
        "    (void)arg;\n"
        "    volatile int* p = (volatile int*)0;\n"
        "    *p = 1;\n"
        "    return NULL;\n"
        "}\n"
        "int lf_kernel_run(void* out) { (void)out; return 0; }\n"
        "int lf_kernel_run_par(const lf_kernel_params* params, void* out) {\n"
        "    (void)params; (void)out;\n"
        "    pthread_t tid;\n"
        "    pthread_create(&tid, NULL, lf_lane, NULL);\n"
        "    pthread_join(tid, NULL);\n"
        "    return 0;\n"
        "}\n");
    ASSERT_TRUE(compiled.ok()) << compiled.status().str();
    KernelParams params;
    params.threads = 4;
    const RunOutcome out = run_kernel_par(compiled.value().path, params);
    EXPECT_EQ(out.state, RunState::Crashed) << out.detail;
    EXPECT_EQ(out.signal, SIGSEGV);
    // The parent (this test) survived a lane segfault in the child pool.
}

TEST_F(ExecBackendTest, WedgedParallelLaneHitsTheWatchdog) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    CompileOptions opts;
    opts.cache_dir = fresh_cache_dir("parwedge");
    KernelCompiler compiler(opts);
    const auto compiled = compiler.compile(
        "#include <pthread.h>\n"
        "#include <stddef.h>\n"
        "typedef struct { int threads; int tile; long long cutoff; }"
        " lf_kernel_params;\n"
        "static void* lf_lane(void* arg) {\n"
        "    (void)arg;\n"
        "    volatile int spin = 1;\n"
        "    while (spin) {}\n"
        "    return NULL;\n"
        "}\n"
        "int lf_kernel_run(void* out) { (void)out; return 0; }\n"
        "int lf_kernel_run_par(const lf_kernel_params* params, void* out) {\n"
        "    (void)params; (void)out;\n"
        "    pthread_t tid;\n"
        "    pthread_create(&tid, NULL, lf_lane, NULL);\n"
        "    pthread_join(tid, NULL);\n"
        "    return 0;\n"
        "}\n");
    ASSERT_TRUE(compiled.ok()) << compiled.status().str();
    SandboxLimits limits;
    limits.wall_ms = 300;
    limits.term_grace_ms = 100;
    KernelParams params;
    params.threads = 2;
    const RunOutcome out = run_kernel_par(compiled.value().path, params, limits);
    EXPECT_EQ(out.state, RunState::Timeout) << out.detail;
    EXPECT_EQ(out.status().code(), StatusCode::ResourceExhausted);
}

TEST_F(ExecBackendTest, CompilerProbeMemoizesPerFlagSet) {
    // The probe is per (compiler, flag set): a missing driver is a miss, a
    // working driver with a nonsense flag is a *different* miss, and the
    // plain driver's verdict is unaffected by either.
    EXPECT_FALSE(KernelCompiler::compiler_available("lf-no-such-compiler-exists"));
    // Memoized: the second call answers from the table (same verdict).
    EXPECT_FALSE(KernelCompiler::compiler_available("lf-no-such-compiler-exists"));
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    EXPECT_TRUE(KernelCompiler::compiler_available("cc"));
    EXPECT_FALSE(
        KernelCompiler::compiler_available("cc", {"-fno-such-flag-exists"}));
    EXPECT_TRUE(KernelCompiler::compiler_available("cc"));
    // The instance probe uses the compiler's effective flags: an option set
    // the driver rejects makes the whole backend unavailable up front,
    // instead of failing every compile downstream.
    CompileOptions bad;
    bad.extra_flags = {"-fno-such-flag-exists"};
    EXPECT_FALSE(KernelCompiler(bad).available());
    EXPECT_TRUE(KernelCompiler().available());
}

// ---- Service integration: opt-in native-execution admission ----

TEST_F(ExecBackendTest, ServiceNativelyVerifiesTheGallery) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    svc::ServiceConfig config;
    config.workers = 2;
    config.native_exec = true;
    config.native_cache_dir = fresh_cache_dir("svc");
    svc::FusionService service(config);
    auto jobs = svc::gallery_jobs();
    const auto nd = svc::nd_jobs();
    jobs.insert(jobs.end(), nd.begin(), nd.end());
    const svc::RunReport report = service.run(jobs);
    const svc::RunCounts counts = report.counts();
    EXPECT_EQ(counts.quarantined, 0);
    EXPECT_EQ(counts.native_contained, 0);
    EXPECT_GE(counts.native_verified, 4);  // 4 replayable 2-D + the N-D pair
    for (const auto& j : report.jobs) {
        if (j.status != svc::JobStatus::Verified) continue;
        EXPECT_TRUE(j.native == NativeOutcome::Verified ||
                    j.native == NativeOutcome::Skipped)
            << j.id << ": " << to_string(j.native) << " -- " << j.native_detail;
    }
    // fig14 is graph-only: no program to emit, skipped not failed.
    for (const auto& j : report.jobs) {
        if (j.id == "fig14") {
            EXPECT_EQ(j.native, NativeOutcome::Skipped);
        }
    }
    EXPECT_GT(report.exec_compile.compiles, 0u);
    // The report carries the native outcome per job and the compiler stats.
    const std::string json = svc::report_to_json(report, false);
    EXPECT_NE(json.find("\"native\": \"verified\""), std::string::npos);
    EXPECT_NE(json.find("\"exec\""), std::string::npos);
}

TEST_F(ExecBackendTest, ServiceParallelAdmissionRecordsLaneCount) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    svc::ServiceConfig config;
    config.workers = 2;
    config.native_exec = true;
    config.exec_threads = 2;
    config.native_cache_dir = fresh_cache_dir("svc_par");
    svc::FusionService service(config);
    const svc::RunReport report = service.run(svc::gallery_jobs());
    EXPECT_EQ(report.counts().native_contained, 0);
    int parallel_verified = 0;
    for (const auto& j : report.jobs) {
        if (j.native != NativeOutcome::Verified) continue;
        EXPECT_EQ(j.native_par_threads, 2) << j.id;
        ++parallel_verified;
    }
    EXPECT_GE(parallel_verified, 4);
    const std::string json = svc::report_to_json(report, false);
    EXPECT_NE(json.find("\"native_par_threads\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
}

TEST_F(ExecBackendTest, PlanStoreImpliesSiblingObjectCache) {
    // --store DIR without an explicit object-cache dir must persist compiled
    // kernels under DIR/objects, so a warm restart recompiles nothing.
    const std::string store = fresh_cache_dir("svc_store");
    svc::ServiceConfig config;
    config.plan_store_dir = store;
    svc::FusionService service(config);
    const svc::RunReport report = service.run({});
    EXPECT_EQ(report.config.native_cache_dir, store + "/objects");
    // An explicit cache dir always wins over the implied sibling.
    svc::ServiceConfig explicit_config;
    explicit_config.plan_store_dir = store;
    explicit_config.native_cache_dir = store + "/elsewhere";
    svc::FusionService other(explicit_config);
    EXPECT_EQ(other.run({}).config.native_cache_dir, store + "/elsewhere");
}

TEST_F(ExecBackendTest, ServiceDisabledNativeExecLeavesJobsNotRun) {
    svc::ServiceConfig config;
    config.workers = 1;
    svc::FusionService service(config);
    const svc::RunReport report = service.run(svc::gallery_jobs());
    for (const auto& j : report.jobs) {
        EXPECT_EQ(j.native, NativeOutcome::NotRun) << j.id;
    }
    EXPECT_EQ(report.counts().native_verified, 0);
    EXPECT_EQ(report.exec_compile.compiles, 0u);
}

TEST_F(ExecBackendTest, ServiceContainsCrashingKernelsAndSurvives) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    // exec.run turns every sandbox worker into a SIGSEGV drill: all
    // replayable jobs must end Quarantined-with-trace, the graph-only job
    // is untouched, and the service itself survives to report it all.
    faultpoint::arm("exec.run");
    svc::ServiceConfig config;
    config.workers = 2;
    config.retry.max_attempts = 1;
    config.native_exec = true;
    config.native_cache_dir = fresh_cache_dir("svc_crash");
    svc::FusionService service(config);
    const svc::RunReport report = service.run(svc::gallery_jobs());
    const svc::RunCounts counts = report.counts();
    EXPECT_GE(counts.native_contained, 4);
    for (const auto& j : report.jobs) {
        if (j.native == NativeOutcome::Crashed) {
            EXPECT_EQ(j.status, svc::JobStatus::Quarantined) << j.id;
            EXPECT_NE(j.quarantine_reason.find("native execution"), std::string::npos);
            ASSERT_FALSE(j.attempts.empty());
            EXPECT_FALSE(j.final_trace().empty()) << "quarantine must keep a trace";
        }
    }
}

// ---- Emission hygiene: everything compiles under -Wall -Wextra -Werror ----

TEST_F(ExecBackendTest, EmittedCIsWarningCleanAcrossTheGallery) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    for (const bool openmp : {false, true}) {
        CompileOptions opts;
        opts.cache_dir = fresh_cache_dir(openmp ? "clean_omp" : "clean");
        opts.openmp = openmp;
        opts.extra_flags = {"-Wall", "-Wextra", "-Werror"};
        KernelCompiler compiler(opts);
        const Domain dom{12, 12};
        for (const auto& wc : kGallery) {
            const ir::Program p = ir::parse_program(wc.source);
            const transform::FusedProgram fp =
                transform::fuse_program(p, plan_fusion(analysis::build_mldg(p)));
            for (const std::string& src :
                 {transform::emit_c_program(p, fp, dom),
                  transform::emit_c_kernel_library(p, fp, dom)}) {
                const auto r = compiler.compile(src);
                EXPECT_TRUE(r.ok()) << wc.id << " (openmp=" << openmp
                                    << "): " << r.status().str();
            }
        }
        const front::BasicProgram<VecN> vol = front::parse_basic_program<VecN>(workloads::sources::kVolume3d);
        const NdFusionPlan plan = plan_fusion_nd(analysis::build_mldg_nd(vol));
        const MdDomain mdom{{5, 5, 5}};
        for (const std::string& src :
             {transform::emit_md_c_program(vol, plan, mdom),
              transform::emit_md_c_kernel_library(vol, plan, mdom)}) {
            const auto r = compiler.compile(src);
            EXPECT_TRUE(r.ok()) << "volume3d (openmp=" << openmp
                                << "): " << r.status().str();
        }
    }
}

}  // namespace
}  // namespace lf::exec
