// End-to-end coverage of the extended workload collection: each kernel must
// take its designed algorithm path and verify bit-exact under every engine.

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "baselines/naive.hpp"
#include "exec/equivalence.hpp"
#include "fusion/certify.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "workloads/extra.hpp"

namespace lf {
namespace {

class ExtraWorkloadTest : public ::testing::TestWithParam<workloads::ExtraWorkload> {};

std::string path_of(AlgorithmUsed algorithm) {
    switch (algorithm) {
        case AlgorithmUsed::AcyclicDoall: return "alg3";
        case AlgorithmUsed::CyclicDoall: return "alg4";
        case AlgorithmUsed::CyclicDoallForced: return "alg4-forced";
        case AlgorithmUsed::Hyperplane: return "alg5";
        case AlgorithmUsed::DistributionFallback: return "fallback";
    }
    return "?";
}

TEST_P(ExtraWorkloadTest, TakesTheDesignedAlgorithmPath) {
    const ir::Program p = ir::parse_program(GetParam().dsl_source);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    EXPECT_EQ(path_of(plan.algorithm), GetParam().expected_path) << GetParam().id;
}

TEST_P(ExtraWorkloadTest, PlanCertifies) {
    const ir::Program p = ir::parse_program(GetParam().dsl_source);
    const Mldg g = analysis::build_mldg(p);
    const PlanCertificate cert = certify_plan(g, plan_fusion(g));
    EXPECT_TRUE(cert.valid) << (cert.violations.empty() ? "" : cert.violations.front());
}

TEST_P(ExtraWorkloadTest, NaiveFusionFails) {
    // Every extra kernel carries at least one fusion-preventing dependence;
    // that is what makes them interesting.
    const ir::Program p = ir::parse_program(GetParam().dsl_source);
    EXPECT_FALSE(baselines::naive_fusion(analysis::build_mldg(p)).legal);
}

TEST_P(ExtraWorkloadTest, VerifiesUnderAllEngines) {
    const ir::Program p = ir::parse_program(GetParam().dsl_source);
    const Domain dom{15, 12};
    for (const auto engine : {exec::EngineKind::FusedRowwise, exec::EngineKind::Peeled,
                              exec::EngineKind::Wavefront, exec::EngineKind::Threaded}) {
        const auto result = exec::verify_fusion(p, dom, engine, 2);
        EXPECT_TRUE(result.equivalent)
            << GetParam().id << " engine " << static_cast<int>(engine) << ": " << result.detail;
    }
}

TEST_P(ExtraWorkloadTest, FusionReducesBarriersOrBuysParallelism) {
    const ir::Program p = ir::parse_program(GetParam().dsl_source);
    const Mldg g = analysis::build_mldg(p);
    const FusionPlan plan = plan_fusion(g);
    const auto result = exec::verify_fusion(p, Domain{40, 40}, exec::EngineKind::FusedRowwise);
    ASSERT_TRUE(result.equivalent) << result.detail;
    if (plan.level == ParallelismLevel::InnerDoall) {
        EXPECT_LT(result.transformed.barriers, result.original.barriers) << GetParam().id;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ExtraWorkloadTest, ::testing::ValuesIn(workloads::extra_workloads()),
    [](const ::testing::TestParamInfo<workloads::ExtraWorkload>& info) { return info.param.id; });

TEST(ExtraWorkloads, Pipeline5NeedsOnlyInnerAlignment) {
    // Algorithm 4's phase 2 solves this one with a pure y-shift (the chain
    // of (0,-1) forwards is non-hard): phase 1 retimes nothing in x.
    const ir::Program p =
        ir::parse_program(workloads::extra_workloads()[1].dsl_source);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    ASSERT_EQ(plan.algorithm, AlgorithmUsed::CyclicDoall);
    for (int v = 0; v < plan.retiming.num_nodes(); ++v) {
        EXPECT_EQ(plan.retiming.of(v).x, 0);
    }
    // The chain lands on (0,0): forwarding reuse for every stage.
    int zero_deps = 0;
    for (const auto& e : plan.retimed.edges()) {
        for (const Vec2& d : e.vectors) zero_deps += d.is_zero() ? 1 : 0;
    }
    EXPECT_EQ(zero_deps, 4);
}

}  // namespace
}  // namespace lf
