// Failure injection and differential testing.
//
// The golden-equivalence harness underwrites every claim in this repo, so
// these tests deliberately BREAK transformations and assert the harness
// catches them: a verifier that cannot fail is not verifying anything.
// Plus differential cross-checks between independent implementations
// (engines against engines, Johnson's cycles against brute force).

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "exec/engines.hpp"
#include "exec/equivalence.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/driver.hpp"
#include "graph/algorithms.hpp"
#include "ir/parser.hpp"
#include "ldg/legality.hpp"
#include "support/faultpoint.hpp"
#include "support/rng.hpp"
#include "transform/fused_program.hpp"
#include "workloads/generators.hpp"
#include "workloads/sources.hpp"

namespace lf {
namespace {

/// Runs the original program and a (possibly corrupted) fused program and
/// returns whether they agree.
bool fused_matches_original(const ir::Program& p, const transform::FusedProgram& fp,
                            const Domain& dom) {
    exec::ArrayStore golden(p, dom);
    exec::ArrayStore subject(p, dom);
    (void)exec::run_original(p, dom, golden);
    (void)exec::run_fused_rowwise(fp, dom, subject);
    return !exec::first_difference(p, dom, golden, subject).has_value();
}

TEST(FailureInjection, CorruptedRetimingIsDetected) {
    // Delaying B by two extra rows makes the retimed B->C dependence
    // negative: C consumes values B has not produced yet. The harness must
    // see different array contents.
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    transform::FusedProgram fp = transform::fuse_program(p, plan);
    ASSERT_TRUE(fused_matches_original(p, fp, Domain{15, 15}));  // sanity

    for (auto& body : fp.bodies) {
        if (body.label == "B") body.retiming = Vec2{-2, 0};
    }
    EXPECT_FALSE(fused_matches_original(p, fp, Domain{15, 15}));
}

TEST(FailureInjection, CorruptedBodyOrderIsDetected) {
    // fig2's Algorithm-4 plan retimes C->D to (0,0): D must follow C at each
    // point. Swapping them makes D read stale c values.
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    transform::FusedProgram fp = transform::fuse_program(p, plan);
    auto c_it = std::find_if(fp.bodies.begin(), fp.bodies.end(),
                             [](const auto& b) { return b.label == "C"; });
    auto d_it = std::find_if(fp.bodies.begin(), fp.bodies.end(),
                             [](const auto& b) { return b.label == "D"; });
    ASSERT_TRUE(c_it != fp.bodies.end() && d_it != fp.bodies.end());
    std::iter_swap(c_it, d_it);
    EXPECT_FALSE(fused_matches_original(p, fp, Domain{15, 15}));
}

TEST(FailureInjection, NonStrictScheduleIsDetectedByOrderChecking) {
    // Forcing a column-major wavefront (s = (0,1)) on fig2's Algorithm-4
    // plan violates the (1,-2) dependence: the order-checking store must
    // observe consumer-before-producer events.
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    transform::FusedProgram fp = transform::fuse_program(p, plan);
    ASSERT_FALSE(is_strict_schedule_vector(plan.retimed, Vec2{0, 1}));
    fp.schedule = Vec2{0, 1};

    const Domain dom{15, 15};
    exec::ArrayStore store(p, dom);
    store.enable_order_checking();
    (void)exec::run_wavefront(fp, dom, store);
    EXPECT_GT(store.order_violations(), 0);

    // And the correct schedule produces none.
    transform::FusedProgram good = transform::fuse_program(p, plan);
    exec::ArrayStore clean(p, dom);
    clean.enable_order_checking();
    (void)exec::run_wavefront(good, dom, clean);
    EXPECT_EQ(clean.order_violations(), 0);
}

TEST(FailureInjection, DroppedBodyIsDetected) {
    const ir::Program p = ir::parse_program(workloads::sources::kJacobiPair);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    transform::FusedProgram fp = transform::fuse_program(p, plan);
    fp.bodies.pop_back();
    EXPECT_FALSE(fused_matches_original(p, fp, Domain{10, 10}));
}

// ------------------------------------------------------------ differential -

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialTest, PeeledAndRowwiseEnginesProduceIdenticalStores) {
    Rng rng(GetParam() * 31 + 5);
    const ir::Program p = workloads::random_program(rng);
    const Mldg g = analysis::build_mldg(p);
    const FusionPlan plan = plan_fusion(g);
    if (plan.level != ParallelismLevel::InnerDoall) return;
    const auto fp = transform::fuse_program(p, plan);
    const Domain dom{9, 7};

    exec::ArrayStore a(p, dom), b(p, dom);
    const auto sa = exec::run_fused_rowwise(fp, dom, a);
    const auto sb = exec::run_fused_peeled(fp, dom, b);
    EXPECT_EQ(sa.instances, sb.instances);
    EXPECT_FALSE(exec::first_difference(p, dom, a, b).has_value());
}

TEST_P(DifferentialTest, Alg3AndAlg4AgreeOnAcyclicGraphs) {
    // Algorithm 4 accepts acyclic graphs too; both must deliver DOALL and
    // legal fusion, independently.
    Rng rng(GetParam() * 97 + 11);
    workloads::RandomGraphOptions opt;
    opt.backward_edge_prob = 0;
    opt.self_edge_prob = 0;
    const Mldg g = workloads::random_legal_mldg(rng, opt);
    ASSERT_TRUE(g.is_acyclic());

    const Retiming r3 = acyclic_doall_fusion(g);
    const auto r4 = cyclic_doall_fusion(g);
    ASSERT_TRUE(r4.retiming.has_value());

    const Mldg g3 = r3.apply(g);
    const Mldg g4 = r4.retiming->apply(g);
    EXPECT_TRUE(is_fused_inner_doall(g3));
    const auto order4 = fused_body_order(g4);
    ASSERT_TRUE(order4.has_value());
    EXPECT_TRUE(is_fused_inner_doall(g4, *order4));
}

TEST_P(DifferentialTest, JohnsonCyclesMatchBruteForce) {
    // Brute force: enumerate simple cycles by DFS from each minimal node.
    Rng rng(GetParam() * 131 + 17);
    const int n = 5;
    Adjacency adj(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            if (u == v ? rng.flip(0.2) : rng.flip(0.3)) {
                adj[static_cast<std::size_t>(u)].push_back(v);
            }
        }
    }

    std::set<std::vector<int>> brute;
    std::vector<int> path;
    std::vector<bool> on_path(static_cast<std::size_t>(n), false);
    std::function<void(int, int)> dfs = [&](int start, int v) {
        for (int w : adj[static_cast<std::size_t>(v)]) {
            if (w == start) {
                brute.insert(path);
            } else if (w > start && !on_path[static_cast<std::size_t>(w)]) {
                path.push_back(w);
                on_path[static_cast<std::size_t>(w)] = true;
                dfs(start, w);
                on_path[static_cast<std::size_t>(w)] = false;
                path.pop_back();
            }
        }
    };
    for (int s = 0; s < n; ++s) {
        path = {s};
        on_path.assign(static_cast<std::size_t>(n), false);
        on_path[static_cast<std::size_t>(s)] = true;
        dfs(s, s);
    }

    std::set<std::vector<int>> johnson;
    for (const auto& cyc : simple_cycles(adj)) johnson.insert(cyc);
    EXPECT_EQ(johnson, brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range<std::uint64_t>(0, 25));

// ---------------------------------------------------------------------------
// The fault-point registry itself.
// ---------------------------------------------------------------------------

class FaultSpecTest : public ::testing::Test {
  protected:
    void SetUp() override { faultpoint::reset(); }
    void TearDown() override { faultpoint::reset(); }
};

TEST_F(FaultSpecTest, ArmFromSpecReportsUnknownNames) {
    // A misspelled LF_FAULT entry used to arm silently and never fire --
    // a storm drill against it would be vacuously green. arm_from_spec now
    // returns the offenders (and still arms them, for forward compat with
    // binaries that compile in more points).
    const std::vector<std::string> unknown =
        faultpoint::arm_from_spec("llofra, sovler.spfa ,svc.plan,,  codegen.fuze");
    EXPECT_EQ(unknown, (std::vector<std::string>{"sovler.spfa", "codegen.fuze"}));

    EXPECT_TRUE(faultpoint::is_armed("llofra"));
    EXPECT_TRUE(faultpoint::is_armed("svc.plan"));
    EXPECT_TRUE(faultpoint::is_armed("sovler.spfa"));  // armed anyway, reported
    EXPECT_FALSE(faultpoint::is_armed(""));            // empty entries dropped

    EXPECT_TRUE(faultpoint::is_known_point("solver.spfa"));
    EXPECT_FALSE(faultpoint::is_known_point("sovler.spfa"));
}

TEST_F(FaultSpecTest, WellFormedSpecReportsNothing) {
    EXPECT_TRUE(faultpoint::arm_from_spec("solver.spfa,codegen.emit").empty());
    EXPECT_TRUE(faultpoint::is_armed("solver.spfa"));
    EXPECT_TRUE(faultpoint::is_armed("codegen.emit"));
}

TEST_F(FaultSpecTest, WireAndDiskTierFaultPointsAreRegistered) {
    // The network edge and the persistent plan tier are storm-drill
    // citizens like everything else: their points must be compiled in (so
    // LF_FAULT can arm them) and drill-visible.
    for (const char* point : {"net.accept", "net.read", "net.write", "net.torn_response",
                              "svc.plancache.disk"}) {
        EXPECT_TRUE(faultpoint::is_known_point(point)) << point;
    }
    EXPECT_TRUE(faultpoint::arm_from_spec("net.read,svc.plancache.disk").empty());
    EXPECT_TRUE(faultpoint::is_armed("net.read"));
    EXPECT_TRUE(faultpoint::is_armed("svc.plancache.disk"));
}

TEST_F(FaultSpecTest, NativeExecutionFaultPointsAreRegistered) {
    // The native execution backend's compile / spawn / crash / spin / OOM
    // drills (src/exec/, docs/execution.md) are armable like everything
    // else, including from LF_FAULT for tools/exec_drill.sh.
    for (const char* point :
         {"exec.compile", "exec.spawn", "exec.run", "exec.timeout", "exec.oom"}) {
        EXPECT_TRUE(faultpoint::is_known_point(point)) << point;
    }
    EXPECT_TRUE(faultpoint::arm_from_spec("exec.run,exec.compile").empty());
    EXPECT_TRUE(faultpoint::is_armed("exec.run"));
    EXPECT_TRUE(faultpoint::is_armed("exec.compile"));
}

TEST_F(FaultSpecTest, CompiledInListMatchesRobustnessDoc) {
    // Drift guard: the table in docs/robustness.md (between the
    // faultpoint-table markers) must list exactly known_points(). A new
    // fault point lands in the doc or this test fails.
    std::ifstream doc(LF_SOURCE_DIR "/docs/robustness.md");
    ASSERT_TRUE(doc.good()) << "cannot open docs/robustness.md";
    std::string text((std::istreambuf_iterator<char>(doc)), std::istreambuf_iterator<char>());

    const std::string begin_marker = "<!-- faultpoint-table-begin -->";
    const std::string end_marker = "<!-- faultpoint-table-end -->";
    const std::size_t begin = text.find(begin_marker);
    const std::size_t end = text.find(end_marker);
    ASSERT_NE(begin, std::string::npos) << "missing " << begin_marker;
    ASSERT_NE(end, std::string::npos) << "missing " << end_marker;
    ASSERT_LT(begin, end);

    std::set<std::string> documented;
    const std::size_t body_begin = begin + begin_marker.size();
    std::istringstream block(text.substr(body_begin, end - body_begin));
    std::string token;
    while (block >> token) {
        if (token == "```") continue;
        documented.insert(token);
    }

    std::set<std::string> compiled;
    for (const auto& name : faultpoint::known_points()) compiled.insert(name);

    EXPECT_EQ(documented, compiled)
        << "docs/robustness.md fault-point table has drifted from "
           "kCompiledIn in src/support/faultpoint.cpp";
}

}  // namespace
}  // namespace lf
