// Tests for the four fusion algorithms, pinned to the paper's published
// results where the paper states them, plus seed-swept property tests.

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "fusion/acyclic_doall.hpp"
#include "fusion/cyclic_doall.hpp"
#include "fusion/driver.hpp"
#include "fusion/hyperplane.hpp"
#include "fusion/llofra.hpp"
#include "graph/algorithms.hpp"
#include "ldg/legality.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"

namespace lf {
namespace {

using workloads::fig14_graph;
using workloads::fig2_graph;
using workloads::fig8_graph;
using workloads::iir_chain_graph;
using workloads::jacobi_pair_graph;

// ---------------------------------------------------------------- LLOFRA ---

TEST(Llofra, Fig2MatchesSection33) {
    // Section 3.3 reports r(A)=(0,0), r(B)=(0,0), r(C)=(0,-2), r(D)=(0,-3).
    const Mldg g = fig2_graph();
    const Retiming r = llofra(g);
    EXPECT_EQ(r.of(0), Vec2(0, 0));
    EXPECT_EQ(r.of(1), Vec2(0, 0));
    EXPECT_EQ(r.of(2), Vec2(0, -2));
    EXPECT_EQ(r.of(3), Vec2(0, -3));
}

TEST(Llofra, Fig2RetimedGraphMatchesFigure6) {
    // Figure 6(a): A->B (1,1); B->C (0,0)*; C->D (0,0); A->C (0,3);
    // D->A (2,-2); C->C (1,0).
    const Mldg g = fig2_graph();
    const Mldg gr = llofra(g).apply(g);
    EXPECT_EQ(gr.edge(*gr.find_edge(0, 1)).delta(), Vec2(1, 1));
    EXPECT_EQ(gr.edge(*gr.find_edge(1, 2)).delta(), Vec2(0, 0));
    EXPECT_EQ(gr.edge(*gr.find_edge(2, 3)).delta(), Vec2(0, 0));
    EXPECT_EQ(gr.edge(*gr.find_edge(0, 2)).delta(), Vec2(0, 3));
    EXPECT_EQ(gr.edge(*gr.find_edge(3, 0)).delta(), Vec2(2, -2));
    EXPECT_EQ(gr.edge(*gr.find_edge(2, 2)).delta(), Vec2(1, 0));
    EXPECT_TRUE(is_fusion_legal(gr));
    // But the fused inner loop is NOT DOALL (Figure 7's serialized rows):
    // A->C retimed to (0,3) is an inner-carried dependence.
    EXPECT_FALSE(is_fused_inner_doall(gr));
}

TEST(Llofra, ThrowsOnUnschedulableInput) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{0, 1}});
    g.add_edge(b, a, {{0, -1}});
    EXPECT_THROW(llofra(g), Error);
}

// ---------------------------------------------------- Algorithm 3 (Thm 4.1) -

TEST(AcyclicDoall, Fig8MatchesFigure10) {
    // Figure 10: r(A)=(0,0), r(B)=(-1,0), r(C)=(-2,0), r(D)=(-2,0),
    // r(E)=(-1,0), r(F)=(-2,0), r(G)=(-2,0).
    const Mldg g = fig8_graph();
    const Retiming r = acyclic_doall_fusion(g);
    const std::vector<Vec2> expected{{0, 0}, {-1, 0}, {-2, 0}, {-2, 0},
                                     {-1, 0}, {-2, 0}, {-2, 0}};
    EXPECT_EQ(r.values(), expected);
}

TEST(AcyclicDoall, Fig8RetimedWeightsMatchFigure10) {
    const Mldg g = fig8_graph();
    const Mldg gr = acyclic_doall_fusion(g).apply(g);
    EXPECT_EQ(gr.edge(*gr.find_edge(0, 1)).delta(), Vec2(1, 1));   // A->B
    EXPECT_EQ(gr.edge(*gr.find_edge(1, 2)).delta(), Vec2(1, -2));  // B->C
    EXPECT_EQ(gr.edge(*gr.find_edge(2, 3)).delta(), Vec2(1, 3));   // C->D
    EXPECT_EQ(gr.edge(*gr.find_edge(3, 4)).delta(), Vec2(1, -2));  // D->E
    EXPECT_EQ(gr.edge(*gr.find_edge(1, 5)).delta(), Vec2(1, -2));  // B->F
    EXPECT_EQ(gr.edge(*gr.find_edge(5, 6)).delta(), Vec2(1, 2));   // F->G
    EXPECT_EQ(gr.edge(*gr.find_edge(1, 4)).delta(), Vec2(1, 2));   // B->E
    EXPECT_EQ(gr.edge(*gr.find_edge(0, 3)).delta(), Vec2(2, -3));  // A->D
    EXPECT_TRUE(is_fused_inner_doall(gr));
}

TEST(AcyclicDoall, RejectsCyclicInput) {
    EXPECT_THROW(acyclic_doall_fusion(fig2_graph()), Error);
}

// ---------------------------------------------------- Algorithm 4 (Thm 4.2) -

TEST(CyclicDoall, Fig2MatchesSection43) {
    // Section 4.3: r(A)=r(B)=(0,0), r(C)=(-1,0), r(D)=(-1,-1).
    const Mldg g = fig2_graph();
    const auto outcome = cyclic_doall_fusion(g);
    ASSERT_TRUE(outcome.retiming.has_value());
    EXPECT_EQ(outcome.retiming->of(0), Vec2(0, 0));
    EXPECT_EQ(outcome.retiming->of(1), Vec2(0, 0));
    EXPECT_EQ(outcome.retiming->of(2), Vec2(-1, 0));
    EXPECT_EQ(outcome.retiming->of(3), Vec2(-1, -1));
}

TEST(CyclicDoall, Fig2RetimedGraphMatchesFigure12) {
    // Figure 12(a): A->B (1,1); B->C (1,-2)*; C->D (0,0); A->C (1,1);
    // D->A (1,0); C->C (1,0).
    const Mldg g = fig2_graph();
    const auto outcome = cyclic_doall_fusion(g);
    ASSERT_TRUE(outcome.retiming.has_value());
    const Mldg gr = outcome.retiming->apply(g);
    EXPECT_EQ(gr.edge(*gr.find_edge(0, 1)).delta(), Vec2(1, 1));
    EXPECT_EQ(gr.edge(*gr.find_edge(1, 2)).delta(), Vec2(1, -2));
    EXPECT_EQ(gr.edge(*gr.find_edge(2, 3)).delta(), Vec2(0, 0));
    EXPECT_EQ(gr.edge(*gr.find_edge(0, 2)).delta(), Vec2(1, 1));
    EXPECT_EQ(gr.edge(*gr.find_edge(3, 0)).delta(), Vec2(1, 0));
    EXPECT_EQ(gr.edge(*gr.find_edge(2, 2)).delta(), Vec2(1, 0));
    EXPECT_TRUE(is_fused_inner_doall(gr));
}

TEST(CyclicDoall, JacobiPairFusesToDoall) {
    const Mldg g = jacobi_pair_graph();
    const auto outcome = cyclic_doall_fusion(g);
    ASSERT_TRUE(outcome.retiming.has_value());
    const Mldg gr = outcome.retiming->apply(g);
    EXPECT_TRUE(is_fusion_legal(gr));
    EXPECT_TRUE(is_fused_inner_doall(gr));
}

TEST(CyclicDoall, Fig14FailsPhaseOne) {
    // Theorem 4.2's condition is violated: hard edges B->C and C->D sit on
    // zero-x cycles, so the x constraint graph has a negative cycle.
    const auto outcome = cyclic_doall_fusion(fig14_graph());
    EXPECT_FALSE(outcome.retiming.has_value());
    EXPECT_EQ(outcome.failed_phase, 1);
}

TEST(CyclicDoall, IirChainFailsPhaseOne) {
    const auto outcome = cyclic_doall_fusion(iir_chain_graph());
    EXPECT_FALSE(outcome.retiming.has_value());
    EXPECT_EQ(outcome.failed_phase, 1);
}

TEST(CyclicDoall, PhaseTwoFailureIsReachable) {
    // Non-hard zero-x edges around a cycle whose y-weights cannot be made
    // all zero: x-feasible but y-equalities inconsistent. Cycle A->B->A with
    // delta (0,2) and (1,-2) plus a path forcing both x-retimed weights to 0.
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    // Cycle of zero-x edges is impossible in a schedulable graph, so phase-2
    // failure needs inconsistent *paths*: two zero-x paths A->...->C whose
    // y-sums differ, plus equality-forcing structure. Easiest: parallel
    // equalities via two routes A->C and A->B->C, all zero-x after phase 1.
    g.add_edge(a, c, {{0, 1}});
    g.add_edge(a, b, {{0, 1}});
    g.add_edge(b, c, {{0, 1}});
    // Make the graph cyclic so Algorithm 4 is the natural choice; the back
    // edge is carried (x=2) and does not constrain phase 2.
    g.add_edge(c, a, {{2, 0}});
    const auto outcome = cyclic_doall_fusion(g);
    EXPECT_FALSE(outcome.retiming.has_value());
    EXPECT_EQ(outcome.failed_phase, 2);
}

// ---------------------------------------------------- Algorithm 5 (Thm 4.4) -

TEST(Hyperplane, Fig14ProducesSkewedStrictSchedule)
{
    const Mldg g = fig14_graph();
    const HyperplaneResult hp = hyperplane_fusion(g);
    const Mldg gr = hp.retiming.apply(g);
    EXPECT_TRUE(is_fusion_legal(gr) || fused_body_order(gr).has_value());
    EXPECT_TRUE(is_strict_schedule_vector(gr, hp.schedule));
    EXPECT_EQ(hp.schedule.dot(hp.hyperplane), 0);
    // The example needs skewing: a row-parallel schedule (1,0) must NOT be
    // strict, and the computed schedule must involve both dimensions.
    EXPECT_FALSE(is_strict_schedule_vector(gr, Vec2{1, 0}));
    EXPECT_GT(hp.schedule.x, 0);
    EXPECT_EQ(hp.schedule.y, 1);
}

TEST(Hyperplane, ScheduleFormulaCaseAZero) {
    // All dependences within one outer iteration, forward in j: s = (0,1).
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{0, 2}});
    EXPECT_EQ(schedule_vector_for(g), Vec2(0, 1));
}

TEST(Hyperplane, ScheduleFormulaNoDependences) {
    Mldg g;
    g.add_node("A");
    g.add_node("B");
    EXPECT_EQ(schedule_vector_for(g), Vec2(1, 0));
}

TEST(Hyperplane, ScheduleFormulaNegativeSlopeAllowed) {
    // All carried dependences already have positive y: s1 may be <= 0; the
    // formula must still produce a strict schedule.
    Mldg g;
    const int a = g.add_node("A");
    g.add_edge(a, a, {{1, 5}});
    const Vec2 s = schedule_vector_for(g);
    EXPECT_TRUE(is_strict_schedule_vector(g, s));
    EXPECT_EQ(s, Vec2(-4, 1));
}

TEST(Hyperplane, RejectsVectorsBelowZero) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{0, -2}});
    EXPECT_THROW((void)schedule_vector_for(g), Error);
}

// ------------------------------------------------------------------ Driver -

TEST(Driver, PicksTheStrongestAlgorithmPerWorkload) {
    EXPECT_EQ(plan_fusion(fig8_graph()).algorithm, AlgorithmUsed::AcyclicDoall);
    EXPECT_EQ(plan_fusion(fig2_graph()).algorithm, AlgorithmUsed::CyclicDoall);
    EXPECT_EQ(plan_fusion(jacobi_pair_graph()).algorithm, AlgorithmUsed::CyclicDoall);
    EXPECT_EQ(plan_fusion(fig14_graph()).algorithm, AlgorithmUsed::Hyperplane);
    EXPECT_EQ(plan_fusion(iir_chain_graph()).algorithm, AlgorithmUsed::Hyperplane);
}

TEST(Driver, DoallPlansUseRowSchedule) {
    const FusionPlan plan = plan_fusion(fig2_graph());
    EXPECT_EQ(plan.level, ParallelismLevel::InnerDoall);
    EXPECT_EQ(plan.schedule, Vec2(1, 0));
    EXPECT_EQ(plan.hyperplane, Vec2(0, 1));
    EXPECT_FALSE(plan.cyclic_doall_failed_phase.has_value());
}

TEST(Driver, ForcedCarryRescuesPhaseTwoFailures) {
    // Extension tier: Algorithm 4 fails phase 2, but carrying every edge is
    // feasible -- the driver still delivers DOALL rows instead of falling
    // back to a hyperplane.
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    g.add_edge(a, c, {{0, 1}});
    g.add_edge(a, b, {{0, 1}});
    g.add_edge(b, c, {{0, 1}});
    g.add_edge(c, a, {{3, 0}});
    const FusionPlan plan = plan_fusion(g);
    EXPECT_EQ(plan.algorithm, AlgorithmUsed::CyclicDoallForced);
    EXPECT_EQ(plan.level, ParallelismLevel::InnerDoall);
    ASSERT_TRUE(plan.cyclic_doall_failed_phase.has_value());
    EXPECT_EQ(*plan.cyclic_doall_failed_phase, 2);
    EXPECT_TRUE(is_fused_inner_doall(plan.retimed, plan.body_order));
}

TEST(Driver, HyperplanePlanRecordsFailedPhase) {
    const FusionPlan plan = plan_fusion(fig14_graph());
    EXPECT_EQ(plan.level, ParallelismLevel::Hyperplane);
    ASSERT_TRUE(plan.cyclic_doall_failed_phase.has_value());
    EXPECT_EQ(*plan.cyclic_doall_failed_phase, 1);
}

TEST(Driver, BodyOrderReordersFig14) {
    // Figure 14's retiming lands several dependences on (0,0) across
    // backward edges (e.g. D->C); the fused body must execute D before C.
    const FusionPlan plan = plan_fusion(fig14_graph());
    std::vector<int> pos(static_cast<std::size_t>(plan.retimed.num_nodes()));
    for (std::size_t k = 0; k < plan.body_order.size(); ++k) {
        pos[static_cast<std::size_t>(plan.body_order[k])] = static_cast<int>(k);
    }
    for (const auto& e : plan.retimed.edges()) {
        for (const Vec2& d : e.vectors) {
            if (d.is_zero()) {
                EXPECT_LT(pos[static_cast<std::size_t>(e.from)],
                          pos[static_cast<std::size_t>(e.to)]);
            }
        }
    }
}

TEST(Driver, DescribeMentionsAlgorithmAndRetiming) {
    const Mldg g = fig2_graph();
    const FusionPlan plan = plan_fusion(g);
    const std::string desc = plan.describe(g);
    EXPECT_NE(desc.find("Algorithm 4"), std::string::npos);
    EXPECT_NE(desc.find("r(A)"), std::string::npos);
}

// ------------------------------------------------------- Property sweeps ---

class FusionPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FusionPropertyTest, LlofraAlwaysLegalizesLegalGraphs) {
    Rng rng(GetParam());
    const Mldg g = workloads::random_legal_mldg(rng);
    const Retiming r = llofra(g);
    const Mldg gr = r.apply(g);
    for (const auto& e : gr.edges()) {
        EXPECT_GE(e.delta(), Vec2(0, 0));
    }
    const auto order = fused_body_order(gr);
    ASSERT_TRUE(order.has_value());
    EXPECT_TRUE(is_fusion_legal(gr, *order));
}

TEST_P(FusionPropertyTest, AcyclicGraphsAlwaysReachDoall) {
    Rng rng(GetParam() * 7919 + 1);
    workloads::RandomGraphOptions opt;
    opt.backward_edge_prob = 0;
    opt.self_edge_prob = 0;
    const Mldg g = workloads::random_legal_mldg(rng, opt);
    ASSERT_TRUE(g.is_acyclic());
    const Retiming r = acyclic_doall_fusion(g);
    const Mldg gr = r.apply(g);
    EXPECT_TRUE(is_fused_inner_doall(gr));
    for (int v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(r.of(v).y, 0);
}

TEST_P(FusionPropertyTest, CyclicDoallSuccessImpliesProperty42) {
    Rng rng(GetParam() * 104729 + 3);
    const Mldg g = workloads::random_legal_mldg(rng);
    const auto outcome = cyclic_doall_fusion(g);
    if (!outcome.retiming.has_value()) return;  // infeasible instances are fine
    const Mldg gr = outcome.retiming->apply(g);
    const auto order = fused_body_order(gr);
    ASSERT_TRUE(order.has_value());
    EXPECT_TRUE(is_fused_inner_doall(gr, *order));
}

TEST_P(FusionPropertyTest, PlanFusionSucceedsOnAllSchedulableGraphs) {
    Rng rng(GetParam() * 15485863 + 5);
    const Mldg g = workloads::random_schedulable_mldg(rng);
    const FusionPlan plan = plan_fusion(g);  // internal postconditions assert
    const Mldg& gr = plan.retimed;
    EXPECT_TRUE(is_strict_schedule_vector(gr, plan.schedule));
    EXPECT_EQ(plan.schedule.dot(plan.hyperplane), 0);
}

TEST_P(FusionPropertyTest, RetimingPreservesAllCycleWeights) {
    Rng rng(GetParam() * 2654435761u + 9);
    workloads::RandomGraphOptions opt;
    opt.num_nodes = 6;  // keep cycle enumeration cheap
    const Mldg g = workloads::random_legal_mldg(rng, opt);
    const Retiming r = llofra(g);
    const Mldg gr = r.apply(g);
    for (const auto& cyc : simple_cycles(g.adjacency(), 2000)) {
        Vec2 before{0, 0}, after{0, 0};
        for (std::size_t k = 0; k < cyc.size(); ++k) {
            const int u = cyc[k], v = cyc[(k + 1) % cyc.size()];
            before += g.edge(*g.find_edge(u, v)).delta();
            after += gr.edge(*gr.find_edge(u, v)).delta();
        }
        EXPECT_EQ(before, after);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionPropertyTest, ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace lf
