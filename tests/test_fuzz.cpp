// Fuzz-style robustness: the parsers must never crash on malformed input --
// every failure surfaces as lf::Error, and valid prefixes never corrupt
// state. Inputs are generated from the token alphabet so they reach deep
// into the grammar rather than dying in the lexer.

#include <gtest/gtest.h>

#include <string>

#include "ir/parser.hpp"
#include "ldg/serialization.hpp"
#include "mdir/parser.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace lf {
namespace {

std::string random_token_soup(Rng& rng, int tokens) {
    static const char* kTokens[] = {
        "program", "loop", "mldg",  "node", "edge", "cost", "dim", "a",  "b", "x",
        "i",       "j",    "i1",    "i2",   "{",    "}",    "[",   "]",  "(", ")",
        "=",       "+",    "-",     "*",    "/",    ";",    ",",   "0",  "1", "2",
        "42",      "0.5",  "1.5e3", "#c\n", "A",    "B",    "_id", "\n",
    };
    std::string out;
    for (int k = 0; k < tokens; ++k) {
        out += kTokens[rng.uniform(0, static_cast<std::int64_t>(std::size(kTokens)) - 1)];
        out += ' ';
    }
    return out;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, LoopDslParserThrowsButNeverCrashes) {
    Rng rng(GetParam() * 1009 + 7);
    for (int round = 0; round < 50; ++round) {
        const std::string source =
            "program p { " + random_token_soup(rng, static_cast<int>(rng.uniform(1, 40))) + " }";
        try {
            const ir::Program p = ir::parse_program(source);
            EXPECT_FALSE(p.loops.empty());  // if it parsed, it is well-formed
        } catch (const Error&) {
            // expected for almost all inputs
        }
    }
}

TEST_P(FuzzTest, MdParserThrowsButNeverCrashes) {
    Rng rng(GetParam() * 2003 + 11);
    for (int round = 0; round < 50; ++round) {
        const std::string source = "program p dim 3 { " +
                                   random_token_soup(rng, static_cast<int>(rng.uniform(1, 40))) +
                                   " }";
        try {
            (void)mdir::parse_md_program(source);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzTest, LdgParserThrowsButNeverCrashes) {
    Rng rng(GetParam() * 3001 + 13);
    for (int round = 0; round < 50; ++round) {
        const std::string source =
            "mldg g { " + random_token_soup(rng, static_cast<int>(rng.uniform(1, 30))) + " }";
        try {
            (void)parse_mldg(source);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzTest, RawByteSoupIsAlsoSafe) {
    Rng rng(GetParam() * 4001 + 17);
    for (int round = 0; round < 30; ++round) {
        std::string source;
        const int len = static_cast<int>(rng.uniform(0, 120));
        for (int k = 0; k < len; ++k) {
            source += static_cast<char>(rng.uniform(1, 127));
        }
        try {
            (void)ir::parse_program(source);
        } catch (const Error&) {
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace lf
