// Fuzz-style robustness: the parsers must never crash on malformed input --
// every failure surfaces as lf::Error, and valid prefixes never corrupt
// state. Inputs are generated from the token alphabet so they reach deep
// into the grammar rather than dying in the lexer. The planner gets the
// same treatment: with a random fault point armed or a random step budget,
// try_plan_fusion must degrade through its ladder without ever throwing.

#include <gtest/gtest.h>

#include <cctype>
#include <optional>
#include <string>

#include "front/parse.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "ldg/legality.hpp"
#include "ldg/serialization.hpp"
#include "front/parse.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"
#include "support/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/sources.hpp"

namespace lf {
namespace {

std::string random_token_soup(Rng& rng, int tokens) {
    static const char* kTokens[] = {
        "program", "loop", "mldg",  "node", "edge", "cost", "dim", "a",  "b", "x",
        "i",       "j",    "i1",    "i2",   "{",    "}",    "[",   "]",  "(", ")",
        "=",       "+",    "-",     "*",    "/",    ";",    ",",   "0",  "1", "2",
        "42",      "0.5",  "1.5e3", "#c\n", "A",    "B",    "_id", "\n",
    };
    std::string out;
    for (int k = 0; k < tokens; ++k) {
        out += kTokens[rng.uniform(0, static_cast<std::int64_t>(std::size(kTokens)) - 1)];
        out += ' ';
    }
    return out;
}

/// True when `msg` carries a `line:col` source location (two digits around
/// a colon) -- every unified-front-end diagnostic must.
bool has_located_diagnostic(const std::string& msg) {
    for (std::size_t k = 1; k + 1 < msg.size(); ++k) {
        if (msg[k] == ':' && std::isdigit(static_cast<unsigned char>(msg[k - 1])) &&
            std::isdigit(static_cast<unsigned char>(msg[k + 1]))) {
            return true;
        }
    }
    return false;
}

/// Applies one random mutation: byte flip, span deletion, token splice, or
/// tail truncation. Starting from real gallery sources (instead of token
/// soup) keeps most mutants deep inside the grammar.
void mutate_source(Rng& rng, std::string& source) {
    if (source.empty()) return;
    const auto pos = [&] {
        return static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(source.size()) - 1));
    };
    switch (rng.uniform(0, 3)) {
        case 0:  // flip one byte to a random printable character
            source[pos()] = static_cast<char>(rng.uniform(32, 126));
            break;
        case 1: {  // delete a short span
            const std::size_t at = pos();
            source.erase(at, static_cast<std::size_t>(rng.uniform(1, 8)));
            break;
        }
        case 2: {  // splice in a grammar token
            static const char* kSplice[] = {"[", "]", "{", "}", "=", ";", "loop",
                                            "dim", "i1", "j",  "+", "-", "9999"};
            source.insert(pos(), kSplice[rng.uniform(
                                     0, static_cast<std::int64_t>(std::size(kSplice)) - 1)]);
            break;
        }
        default:  // truncate the tail
            source.resize(pos());
            break;
    }
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, MutatedGallerySourcesParseOrDiagnoseWithLocation) {
    // Mutation fuzz over the real source gallery (both depths) through the
    // unified front end: every mutant either parses to a well-formed program
    // or throws an lf::Error whose message carries a line:col location --
    // never a crash, never an unlocated diagnostic.
    const std::string_view gallery[] = {
        workloads::sources::kFig2,       workloads::sources::kFig8,
        workloads::sources::kJacobiPair, workloads::sources::kIirChain,
        workloads::sources::kVolume3d,   workloads::sources::kHyper4d,
    };
    Rng rng(GetParam() * 7919 + 29);
    for (int round = 0; round < 60; ++round) {
        std::string source(gallery[rng.uniform(
            0, static_cast<std::int64_t>(std::size(gallery)) - 1)]);
        const int edits = static_cast<int>(rng.uniform(1, 6));
        for (int e = 0; e < edits; ++e) mutate_source(rng, source);
        try {
            const front::AnyProgram any = front::parse_any_program(source);
            if (any.is_2d()) {
                EXPECT_FALSE(any.p2->loops.empty());
            } else {
                EXPECT_FALSE(any.pn->loops.empty());
                EXPECT_GE(any.pn->dim, 2);
            }
        } catch (const Error& e) {
            EXPECT_TRUE(has_located_diagnostic(e.what())) << "unlocated: " << e.what();
        }
    }
}

TEST_P(FuzzTest, LoopDslParserThrowsButNeverCrashes) {
    Rng rng(GetParam() * 1009 + 7);
    for (int round = 0; round < 50; ++round) {
        const std::string source =
            "program p { " + random_token_soup(rng, static_cast<int>(rng.uniform(1, 40))) + " }";
        try {
            const ir::Program p = ir::parse_program(source);
            EXPECT_FALSE(p.loops.empty());  // if it parsed, it is well-formed
        } catch (const Error&) {
            // expected for almost all inputs
        }
    }
}

TEST_P(FuzzTest, MdParserThrowsButNeverCrashes) {
    Rng rng(GetParam() * 2003 + 11);
    for (int round = 0; round < 50; ++round) {
        const std::string source = "program p dim 3 { " +
                                   random_token_soup(rng, static_cast<int>(rng.uniform(1, 40))) +
                                   " }";
        try {
            (void)front::parse_basic_program<VecN>(source);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzTest, LdgParserThrowsButNeverCrashes) {
    Rng rng(GetParam() * 3001 + 13);
    for (int round = 0; round < 50; ++round) {
        const std::string source =
            "mldg g { " + random_token_soup(rng, static_cast<int>(rng.uniform(1, 30))) + " }";
        try {
            (void)parse_mldg(source);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzTest, RawByteSoupIsAlsoSafe) {
    Rng rng(GetParam() * 4001 + 17);
    for (int round = 0; round < 30; ++round) {
        std::string source;
        const int len = static_cast<int>(rng.uniform(0, 120));
        for (int k = 0; k < len; ++k) {
            source += static_cast<char>(rng.uniform(1, 127));
        }
        try {
            (void)ir::parse_program(source);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzTest, TryPlanFusionNeverThrowsUnderRandomFaults) {
    Rng rng(GetParam() * 5003 + 19);
    const auto points = faultpoint::known_points();
    ASSERT_FALSE(points.empty());
    for (int round = 0; round < 15; ++round) {
        // Generate the graph BEFORE arming: random_schedulable_mldg
        // rejection-samples via the (fault-instrumented) solvers and would
        // never terminate with a solver point armed.
        const Mldg g = workloads::random_schedulable_mldg(rng);
        faultpoint::reset();
        faultpoint::arm(points[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(points.size()) - 1))]);

        std::optional<Result<FusionPlan>> result;
        EXPECT_NO_THROW(result.emplace(try_plan_fusion(g)));
        ASSERT_TRUE(result.has_value());
        if (result->ok()) {
            // Whatever rung survived, the plan it returned must be legal.
            const FusionPlan& plan = result->value();
            if (plan.algorithm == AlgorithmUsed::DistributionFallback) {
                EXPECT_TRUE(is_legal_mldg(plan.retimed));
            } else {
                EXPECT_TRUE(is_fusion_legal(plan.retimed, plan.body_order));
            }
        } else {
            EXPECT_NE(result->status().code(), StatusCode::Ok);
            EXPECT_FALSE(result->status().stages.empty());
        }
        faultpoint::reset();
    }
}

TEST_P(FuzzTest, TryPlanFusionNeverThrowsUnderRandomBudgets) {
    Rng rng(GetParam() * 6007 + 23);
    for (int round = 0; round < 15; ++round) {
        const Mldg g = workloads::random_schedulable_mldg(rng);
        TryPlanOptions opts;
        opts.limits.max_steps = static_cast<std::uint64_t>(rng.uniform(0, 40));
        opts.allow_distribution_fallback = rng.flip(0.5);

        std::optional<Result<FusionPlan>> result;
        EXPECT_NO_THROW(result.emplace(try_plan_fusion(g, opts)));
        ASSERT_TRUE(result.has_value());
        if (result->ok()) {
            const FusionPlan& plan = result->value();
            if (plan.algorithm == AlgorithmUsed::DistributionFallback) {
                EXPECT_TRUE(is_legal_mldg(plan.retimed));
            } else {
                EXPECT_TRUE(is_fusion_legal(plan.retimed, plan.body_order));
            }
        } else {
            EXPECT_NE(result->status().code(), StatusCode::Ok);
            EXPECT_FALSE(result->status().stages.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace lf
