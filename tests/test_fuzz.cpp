// Fuzz-style robustness: the parsers must never crash on malformed input --
// every failure surfaces as lf::Error, and valid prefixes never corrupt
// state. Inputs are generated from the token alphabet so they reach deep
// into the grammar rather than dying in the lexer. The planner gets the
// same treatment: with a random fault point armed or a random step budget,
// try_plan_fusion must degrade through its ladder without ever throwing.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "ldg/legality.hpp"
#include "ldg/serialization.hpp"
#include "mdir/parser.hpp"
#include "support/diagnostics.hpp"
#include "support/faultpoint.hpp"
#include "support/rng.hpp"
#include "workloads/generators.hpp"

namespace lf {
namespace {

std::string random_token_soup(Rng& rng, int tokens) {
    static const char* kTokens[] = {
        "program", "loop", "mldg",  "node", "edge", "cost", "dim", "a",  "b", "x",
        "i",       "j",    "i1",    "i2",   "{",    "}",    "[",   "]",  "(", ")",
        "=",       "+",    "-",     "*",    "/",    ";",    ",",   "0",  "1", "2",
        "42",      "0.5",  "1.5e3", "#c\n", "A",    "B",    "_id", "\n",
    };
    std::string out;
    for (int k = 0; k < tokens; ++k) {
        out += kTokens[rng.uniform(0, static_cast<std::int64_t>(std::size(kTokens)) - 1)];
        out += ' ';
    }
    return out;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, LoopDslParserThrowsButNeverCrashes) {
    Rng rng(GetParam() * 1009 + 7);
    for (int round = 0; round < 50; ++round) {
        const std::string source =
            "program p { " + random_token_soup(rng, static_cast<int>(rng.uniform(1, 40))) + " }";
        try {
            const ir::Program p = ir::parse_program(source);
            EXPECT_FALSE(p.loops.empty());  // if it parsed, it is well-formed
        } catch (const Error&) {
            // expected for almost all inputs
        }
    }
}

TEST_P(FuzzTest, MdParserThrowsButNeverCrashes) {
    Rng rng(GetParam() * 2003 + 11);
    for (int round = 0; round < 50; ++round) {
        const std::string source = "program p dim 3 { " +
                                   random_token_soup(rng, static_cast<int>(rng.uniform(1, 40))) +
                                   " }";
        try {
            (void)mdir::parse_md_program(source);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzTest, LdgParserThrowsButNeverCrashes) {
    Rng rng(GetParam() * 3001 + 13);
    for (int round = 0; round < 50; ++round) {
        const std::string source =
            "mldg g { " + random_token_soup(rng, static_cast<int>(rng.uniform(1, 30))) + " }";
        try {
            (void)parse_mldg(source);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzTest, RawByteSoupIsAlsoSafe) {
    Rng rng(GetParam() * 4001 + 17);
    for (int round = 0; round < 30; ++round) {
        std::string source;
        const int len = static_cast<int>(rng.uniform(0, 120));
        for (int k = 0; k < len; ++k) {
            source += static_cast<char>(rng.uniform(1, 127));
        }
        try {
            (void)ir::parse_program(source);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzTest, TryPlanFusionNeverThrowsUnderRandomFaults) {
    Rng rng(GetParam() * 5003 + 19);
    const auto points = faultpoint::known_points();
    ASSERT_FALSE(points.empty());
    for (int round = 0; round < 15; ++round) {
        // Generate the graph BEFORE arming: random_schedulable_mldg
        // rejection-samples via the (fault-instrumented) solvers and would
        // never terminate with a solver point armed.
        const Mldg g = workloads::random_schedulable_mldg(rng);
        faultpoint::reset();
        faultpoint::arm(points[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(points.size()) - 1))]);

        std::optional<Result<FusionPlan>> result;
        EXPECT_NO_THROW(result.emplace(try_plan_fusion(g)));
        ASSERT_TRUE(result.has_value());
        if (result->ok()) {
            // Whatever rung survived, the plan it returned must be legal.
            const FusionPlan& plan = result->value();
            if (plan.algorithm == AlgorithmUsed::DistributionFallback) {
                EXPECT_TRUE(is_legal_mldg(plan.retimed));
            } else {
                EXPECT_TRUE(is_fusion_legal(plan.retimed, plan.body_order));
            }
        } else {
            EXPECT_NE(result->status().code(), StatusCode::Ok);
            EXPECT_FALSE(result->status().stages.empty());
        }
        faultpoint::reset();
    }
}

TEST_P(FuzzTest, TryPlanFusionNeverThrowsUnderRandomBudgets) {
    Rng rng(GetParam() * 6007 + 23);
    for (int round = 0; round < 15; ++round) {
        const Mldg g = workloads::random_schedulable_mldg(rng);
        TryPlanOptions opts;
        opts.limits.max_steps = static_cast<std::uint64_t>(rng.uniform(0, 40));
        opts.allow_distribution_fallback = rng.flip(0.5);

        std::optional<Result<FusionPlan>> result;
        EXPECT_NO_THROW(result.emplace(try_plan_fusion(g, opts)));
        ASSERT_TRUE(result.has_value());
        if (result->ok()) {
            const FusionPlan& plan = result->value();
            if (plan.algorithm == AlgorithmUsed::DistributionFallback) {
                EXPECT_TRUE(is_legal_mldg(plan.retimed));
            } else {
                EXPECT_TRUE(is_fusion_legal(plan.retimed, plan.body_order));
            }
        } else {
            EXPECT_NE(result->status().code(), StatusCode::Ok);
            EXPECT_FALSE(result->status().stages.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace lf
