// Golden differential suite (solver-unification guard): the planner must
// reproduce, byte for byte, the plans and rung traces recorded from the
// pre-refactor seed for every gallery workload -- 2-D (paper + extended
// gallery) and N-D (fixed fixtures). The golden files under tests/golden/
// were generated from the seed tree *before* the 2-D and N-D solver stacks
// were unified; any divergence means the unified core changed observable
// planner behavior.
//
// Regenerate (only when behavior is *intentionally* changed) with:
//   LF_UPDATE_GOLDEN=1 ./test_golden_differential
//
// The FaultPointsOnUnifiedPath tests additionally prove that the shared
// solver fault points fire on *both* the 2-D and the N-D planning paths,
// i.e. that N-D solves really route through the unified solvers.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "fusion/driver.hpp"
#include "graph/spfa.hpp"
#include "support/diagnostics.hpp"
#include "fusion/multidim.hpp"
#include "ir/parser.hpp"
#include "ldg/serialization.hpp"
#include "support/faultpoint.hpp"
#include "workloads/extra.hpp"
#include "workloads/gallery.hpp"

namespace lf {
namespace {

std::string golden_path(const std::string& name) {
    return std::string(LF_SOURCE_DIR) + "/tests/golden/" + name;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Compares `actual` against the named golden file; with LF_UPDATE_GOLDEN=1
/// rewrites the file instead (and still passes).
void check_golden(const std::string& name, const std::string& actual) {
    const std::string path = golden_path(name);
    if (std::getenv("LF_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        return;
    }
    const std::string expected = read_file(path);
    ASSERT_FALSE(expected.empty()) << "missing golden file " << path
                                   << " (regenerate with LF_UPDATE_GOLDEN=1)";
    EXPECT_EQ(expected, actual) << "planner behavior diverged from the seed golden "
                                << path << " (see file header for regeneration)";
}

// ---------------------------------------------------------------------------
// 2-D gallery digest

std::string digest_plan_2d(const std::string& id, const Mldg& g) {
    std::ostringstream out;
    out << "== workload " << id << "\n";
    const Result<FusionPlan> r = try_plan_fusion(g);
    const std::vector<StageReport>& stages = r.ok() ? r.value().stages : r.status().stages;
    for (const StageReport& s : stages) {
        out << "stage " << s.stage << ":" << to_string(s.code);
        if (!s.detail.empty()) out << " [" << s.detail << "]";
        out << "\n";
    }
    if (!r.ok()) {
        out << "status " << to_string(r.status().code()) << "\n";
        return out.str();
    }
    const FusionPlan& plan = r.value();
    out << "status Ok\n";
    out << "algorithm " << to_string(plan.algorithm) << "\n";
    out << "level " << to_string(plan.level) << "\n";
    out << "schedule " << plan.schedule.str() << "\n";
    out << "hyperplane " << plan.hyperplane.str() << "\n";
    out << "body_order";
    for (int n : plan.body_order) out << " " << plan.retimed.node(n).name;
    out << "\n";
    out << "retiming";
    for (int n = 0; n < plan.retiming.num_nodes(); ++n) {
        out << " " << plan.retimed.node(n).name << "=" << plan.retiming.of(n).str();
    }
    out << "\n";
    out << serialize_mldg(plan.retimed, id + ".retimed");
    return out.str();
}

TEST(GoldenDifferential, PaperGalleryPlans) {
    std::ostringstream out;
    for (const workloads::Workload& w : workloads::paper_workloads()) {
        out << digest_plan_2d(w.id, w.graph);
    }
    check_golden("gallery_paper.golden", out.str());
}

TEST(GoldenDifferential, ExtraGalleryPlans) {
    std::ostringstream out;
    for (const workloads::ExtraWorkload& w : workloads::extra_workloads()) {
        const ir::Program p = ir::parse_program(w.dsl_source);
        out << digest_plan_2d(w.id, analysis::build_mldg(p));
    }
    check_golden("gallery_extra.golden", out.str());
}

// The as-printed Figure 14 is the gallery's canonical *illegal* input: its
// zero-weight cycle must keep producing the same failing rung trace.
TEST(GoldenDifferential, Fig14AsPrintedTrace) {
    check_golden("fig14_as_printed.golden",
                 digest_plan_2d("fig14_as_printed", workloads::fig14_graph_as_printed()));
}

// ---------------------------------------------------------------------------
// N-D gallery digest

MldgN stencil_3d() {
    MldgN g(3);
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    g.add_edge(a, b, {VecN{0, 0, -2}, VecN{0, 0, 1}});  // hard, fusion-preventing
    g.add_edge(b, c, {VecN{0, 1, -1}});
    g.add_edge(c, a, {VecN{1, -1, 0}});
    g.add_edge(c, c, {VecN{1, 0, 2}});
    return g;
}

MldgN acyclic_chain_3d() {
    MldgN g(3);
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    g.add_edge(a, b, {VecN{0, 0, -2}, VecN{0, 3, 1}});
    g.add_edge(b, c, {VecN{0, 2, -5}});
    g.add_edge(a, c, {VecN{2, 0, 0}});
    return g;
}

MldgN wavefront_4d() {
    MldgN g(4);
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {VecN{0, 0, 0, -3}, VecN{0, 0, 1, 2}});
    g.add_edge(b, a, {VecN{0, 1, -1, 0}});
    g.add_edge(a, a, {VecN{1, 0, 0, -2}});
    return g;
}

MldgN feedback_1d() {
    MldgN g(1);
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {VecN{-1}});
    g.add_edge(b, a, {VecN{2}});
    return g;
}

std::string digest_plan_nd(const std::string& id, const MldgN& g) {
    std::ostringstream out;
    out << "== nd-workload " << id << " dim=" << g.dim() << "\n";
    if (!is_schedulable_nd(g)) {
        out << "status unschedulable\n";
        return out.str();
    }
    const NdFusionPlan plan = plan_fusion_nd(g);
    out << "level "
        << (plan.level == NdParallelism::OutermostCarried ? "OutermostCarried" : "Hyperplane")
        << "\n";
    out << "schedule " << plan.schedule.str() << "\n";
    out << "retiming";
    for (int n = 0; n < plan.retiming.num_nodes(); ++n) {
        out << " " << g.node(n).name << "=" << plan.retiming.of(n).str();
    }
    out << "\n";
    out << plan.retimed.summary();
    return out.str();
}

TEST(GoldenDifferential, NdGalleryPlans) {
    std::ostringstream out;
    out << digest_plan_nd("stencil_3d", stencil_3d());
    out << digest_plan_nd("acyclic_chain_3d", acyclic_chain_3d());
    out << digest_plan_nd("wavefront_4d", wavefront_4d());
    out << digest_plan_nd("feedback_1d", feedback_1d());
    check_golden("gallery_nd.golden", out.str());
}

// ---------------------------------------------------------------------------
// Fault points on the unified path. These prove that both the 2-D ladder and
// the N-D planners route through the *same* solver entry points: arming
// solver.bellman_ford / solver.spfa must register hits from either side.

class FaultPointsOnUnifiedPath : public ::testing::Test {
  protected:
    void SetUp() override { faultpoint::reset(); }
    void TearDown() override { faultpoint::reset(); }
};

TEST_F(FaultPointsOnUnifiedPath, BellmanFordFires2d) {
    faultpoint::arm("solver.bellman_ford");
    const Result<FusionPlan> r = try_plan_fusion(workloads::fig2_graph());
    EXPECT_GE(faultpoint::hits("solver.bellman_ford"), 1u);
    // Every solver-backed rung is poisoned; only the solver-free
    // distribution fallback can still succeed.
    if (r.ok()) {
        EXPECT_EQ(r.value().algorithm, AlgorithmUsed::DistributionFallback);
    }
}

TEST_F(FaultPointsOnUnifiedPath, BellmanFordFiresNd) {
    faultpoint::arm("solver.bellman_ford");
    const MldgN g = stencil_3d();
    // Schedulability checking and LLOFRA both solve through the unified
    // Bellman-Ford; with the fault armed the solve reports Internal and the
    // planner must refuse rather than fabricate a retiming.
    EXPECT_FALSE(is_schedulable_nd(g));
    EXPECT_THROW((void)plan_fusion_nd(g), Error);
    EXPECT_GE(faultpoint::hits("solver.bellman_ford"), 1u);
}

TEST_F(FaultPointsOnUnifiedPath, SpfaFires) {
    faultpoint::arm("solver.spfa");
    WeightTraits<std::int64_t> traits;
    std::vector<WeightedEdge<std::int64_t>> edges{{0, 1, -1}, {1, 2, -1}};
    const SpfaResult<std::int64_t> r = spfa_all_sources<std::int64_t>(3, edges);
    EXPECT_EQ(r.status, StatusCode::Internal);
    EXPECT_GE(faultpoint::hits("solver.spfa"), 1u);
    (void)traits;
}

}  // namespace
}  // namespace lf
