// Unit tests for src/graph: digraph container, 1-D and lexicographic 2-D
// Bellman-Ford, difference-constraint systems (Problems ILP / 2-ILP of
// Section 2.4), SCC, topological sort and simple-cycle enumeration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "graph/algorithms.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/constraint_system.hpp"
#include "graph/digraph.hpp"
#include "graph/spfa.hpp"
#include "support/rng.hpp"
#include "support/lexvec.hpp"

namespace lf {
namespace {

TEST(Digraph, BasicConstruction) {
    Digraph<std::string, int> g;
    const int a = g.add_node("a");
    const int b = g.add_node("b");
    const int e = g.add_edge(a, b, 7);
    EXPECT_EQ(g.num_nodes(), 2);
    EXPECT_EQ(g.num_edges(), 1);
    EXPECT_EQ(g.node(a), "a");
    EXPECT_EQ(g.edge(e).data, 7);
    ASSERT_EQ(g.out_edges(a).size(), 1u);
    EXPECT_EQ(g.out_edges(a)[0], e);
    ASSERT_EQ(g.in_edges(b).size(), 1u);
    EXPECT_TRUE(g.out_edges(b).empty());
}

TEST(Digraph, UncheckedAccessorsAgreeWithChecked) {
    Digraph<std::string, int> g;
    const int a = g.add_node("a");
    const int b = g.add_node("b");
    const int e = g.add_edge(a, b, 7);
    EXPECT_EQ(&g.node_ref(a), &g.node(a));
    EXPECT_EQ(&g.edge_ref(e), &g.edge(e));
    EXPECT_EQ(g.node_ref(b), "b");
    EXPECT_EQ(g.edge_ref(e).data, 7);
}

TEST(Digraph, RejectsBadEndpoints) {
    Digraph<int, int> g;
    g.add_node(0);
    EXPECT_THROW(g.add_edge(0, 5, 1), Error);
}

TEST(BellmanFord, SingleSourceShortestPaths) {
    // Classic 5-node graph with negative edges but no negative cycle.
    std::vector<WeightedEdge<std::int64_t>> edges{
        {0, 1, 6}, {0, 3, 7}, {1, 2, 5}, {1, 3, 8}, {1, 4, -4},
        {2, 1, -2}, {3, 2, -3}, {3, 4, 9}, {4, 2, 7}, {4, 0, 2},
    };
    const auto r = bellman_ford<std::int64_t>(5, edges, 0);
    ASSERT_FALSE(r.has_negative_cycle);
    EXPECT_EQ(r.dist[0], 0);
    EXPECT_EQ(r.dist[1], 2);
    EXPECT_EQ(r.dist[2], 4);
    EXPECT_EQ(r.dist[3], 7);
    EXPECT_EQ(r.dist[4], -2);
}

TEST(BellmanFord, DetectsNegativeCycleAndExtractsWitness) {
    std::vector<WeightedEdge<std::int64_t>> edges{
        {0, 1, 1}, {1, 2, -3}, {2, 1, 1}, {2, 3, 4},
    };
    const auto r = bellman_ford<std::int64_t>(4, edges, 0);
    ASSERT_TRUE(r.has_negative_cycle);
    // The witness must be a real cycle with negative total weight.
    ASSERT_FALSE(r.negative_cycle.empty());
    std::int64_t total = 0;
    for (std::size_t k = 0; k < r.negative_cycle.size(); ++k) {
        const auto& e = edges[static_cast<std::size_t>(r.negative_cycle[k])];
        const auto& next =
            edges[static_cast<std::size_t>(r.negative_cycle[(k + 1) % r.negative_cycle.size()])];
        EXPECT_EQ(e.to, next.from) << "witness edges must chain";
        total += e.weight;
    }
    EXPECT_LT(total, 0);
}

TEST(BellmanFord, UnreachableNodesStayInfinite) {
    std::vector<WeightedEdge<std::int64_t>> edges{{0, 1, 1}};
    const auto r = bellman_ford<std::int64_t>(3, edges, 0);
    EXPECT_TRUE(WeightTraits<std::int64_t>::is_infinite(r.dist[2]));
}

TEST(BellmanFord, LexicographicWeightsPickLexicographicMinimum) {
    // Two routes 0 -> 2: via 1 costs (1,-5), direct costs (1,-1).
    // Lexicographically (1,-5) < (1,-1).
    std::vector<WeightedEdge<Vec2>> edges{
        {0, 1, Vec2{0, -5}}, {1, 2, Vec2{1, 0}}, {0, 2, Vec2{1, -1}},
    };
    const auto r = bellman_ford<Vec2>(3, edges, 0);
    ASSERT_FALSE(r.has_negative_cycle);
    EXPECT_EQ(r.dist[2], Vec2(1, -5));
}

TEST(BellmanFord, LexicographicNegativeCycleRequiresBelowZeroZero) {
    // Cycle weight (0,-3) is lexicographically negative...
    std::vector<WeightedEdge<Vec2>> neg{{0, 1, Vec2{0, -1}}, {1, 0, Vec2{0, -2}}};
    EXPECT_TRUE(bellman_ford_all_sources<Vec2>(2, neg).has_negative_cycle);
    // ...but (1,-100) is not: the first coordinate dominates.
    std::vector<WeightedEdge<Vec2>> pos{{0, 1, Vec2{0, -50}}, {1, 0, Vec2{1, -50}}};
    EXPECT_FALSE(bellman_ford_all_sources<Vec2>(2, pos).has_negative_cycle);
}

TEST(BellmanFord, AllSourcesDistancesAreNonPositive) {
    // With every vertex a zero-distance source, distances can only drop.
    std::vector<WeightedEdge<std::int64_t>> edges{{0, 1, -2}, {1, 2, 3}, {2, 0, 1}};
    const auto r = bellman_ford_all_sources<std::int64_t>(3, edges);
    ASSERT_FALSE(r.has_negative_cycle);
    for (auto d : r.dist) EXPECT_LE(d, 0);
    EXPECT_EQ(r.dist[1], -2);
}

TEST(ConstraintSystem, FeasibleSystemSatisfiesAllConstraints) {
    DifferenceConstraintSystem<std::int64_t> sys;
    for (int k = 0; k < 4; ++k) sys.add_variable();
    // x1 - x0 <= 3, x2 - x1 <= -2, x3 - x2 <= 1, x3 - x0 <= 0
    sys.add_constraint(0, 1, 3);
    sys.add_constraint(1, 2, -2);
    sys.add_constraint(2, 3, 1);
    sys.add_constraint(0, 3, 0);
    const auto s = sys.solve();
    ASSERT_TRUE(s.feasible);
    EXPECT_LE(s.values[1] - s.values[0], 3);
    EXPECT_LE(s.values[2] - s.values[1], -2);
    EXPECT_LE(s.values[3] - s.values[2], 1);
    EXPECT_LE(s.values[3] - s.values[0], 0);
}

TEST(ConstraintSystem, InfeasibleSystemReportsConflictCycle) {
    DifferenceConstraintSystem<std::int64_t> sys;
    sys.add_variable("a");
    sys.add_variable("b");
    sys.add_constraint(0, 1, 1);    // b - a <= 1
    sys.add_constraint(1, 0, -2);   // a - b <= -2  => b - a >= 2: contradiction
    const auto s = sys.solve();
    EXPECT_FALSE(s.feasible);
    EXPECT_FALSE(s.conflict.empty());
    EXPECT_FALSE(sys.describe_conflict(s.conflict).empty());
}

TEST(ConstraintSystem, EqualityConstraintsHold) {
    DifferenceConstraintSystem<std::int64_t> sys;
    for (int k = 0; k < 3; ++k) sys.add_variable();
    sys.add_equality(0, 1, 5);   // x1 - x0 == 5
    sys.add_equality(1, 2, -3);  // x2 - x1 == -3
    const auto s = sys.solve();
    ASSERT_TRUE(s.feasible);
    EXPECT_EQ(s.values[1] - s.values[0], 5);
    EXPECT_EQ(s.values[2] - s.values[1], -3);
}

TEST(ConstraintSystem, InconsistentEqualitiesAreInfeasible) {
    DifferenceConstraintSystem<std::int64_t> sys;
    for (int k = 0; k < 3; ++k) sys.add_variable();
    sys.add_equality(0, 1, 1);
    sys.add_equality(1, 2, 1);
    sys.add_equality(0, 2, 3);  // should be 2
    EXPECT_FALSE(sys.solve().feasible);
}

TEST(ConstraintSystem, EqualityParityAcrossDimensions) {
    // add_equality must behave identically on every instantiation of the
    // unified system: 1-D, 2-D, and runtime-dimension N-D.
    DifferenceConstraintSystem<Vec2> sys2;
    for (int k = 0; k < 3; ++k) sys2.add_variable();
    sys2.add_equality(0, 1, Vec2{2, -1});
    sys2.add_equality(1, 2, Vec2{0, 4});
    const auto s2 = sys2.solve();
    ASSERT_TRUE(s2.feasible);
    EXPECT_EQ(s2.values[1] - s2.values[0], (Vec2{2, -1}));
    EXPECT_EQ(s2.values[2] - s2.values[1], (Vec2{0, 4}));

    DifferenceConstraintSystem<VecN> sysn(3);
    for (int k = 0; k < 3; ++k) sysn.add_variable();
    sysn.add_equality(0, 1, VecN{2, -1, 0});
    sysn.add_equality(1, 2, VecN{0, 4, -2});
    const auto sn = sysn.solve();
    ASSERT_TRUE(sn.feasible);
    EXPECT_EQ(sn.values[1] - sn.values[0], (VecN{2, -1, 0}));
    EXPECT_EQ(sn.values[2] - sn.values[1], (VecN{0, 4, -2}));

    // And inconsistent equalities stay infeasible in N-D too.
    DifferenceConstraintSystem<VecN> bad(2);
    for (int k = 0; k < 3; ++k) bad.add_variable();
    bad.add_equality(0, 1, VecN{1, 0});
    bad.add_equality(1, 2, VecN{1, 0});
    bad.add_equality(0, 2, VecN{3, 0});  // should be (2,0)
    EXPECT_FALSE(bad.solve().feasible);
}

TEST(ConstraintSystem, NdRejectsDimensionMismatch) {
    DifferenceConstraintSystem<VecN> sys(3);
    sys.add_variable();
    sys.add_variable();
    EXPECT_THROW(sys.add_constraint(0, 1, VecN{1, 2}), Error);
    EXPECT_THROW(sys.add_equality(0, 1, VecN{1, 2, 3, 4}), Error);
}

TEST(LexVec, StaticExtentGenericCore) {
    // The dimension-generic template at a compile-time extent other than 2.
    using V3 = LexVec<3>;
    static_assert(V3::dim() == 3);
    const V3 a{1, -2, 3};
    const V3 b{1, -2, 4};
    EXPECT_LT(a, b);                       // lexicographic order
    EXPECT_EQ(a + b, (V3{2, -4, 7}));
    EXPECT_EQ(b - a, (V3{0, 0, 1}));
    EXPECT_EQ(-a, (V3{-1, 2, -3}));
    EXPECT_EQ(a * 2, (V3{2, -4, 6}));
    EXPECT_EQ(a.dot(b), 1 + 4 + 12);
    EXPECT_TRUE(V3::zeros().is_zero());
    EXPECT_EQ((V3{0, 0, -5}).leading_index(), 2);
    EXPECT_EQ(a.str(), "(1,-2,3)");

    // Saturating checked_add matches the Vec2 specialization's contract.
    WeightTraits<V3> traits;
    EXPECT_FALSE(traits.is_infinite(a));
    EXPECT_TRUE(traits.is_infinite(traits.infinity()));
    EXPECT_TRUE(traits.compatible(a));
}

TEST(SolverStats, BellmanFordAccountsWork) {
    std::vector<WeightedEdge<std::int64_t>> edges{{0, 1, 2}, {1, 2, -1}, {0, 2, 5}};
    SolverStats stats;
    const auto sp = bellman_ford_all_sources<std::int64_t>(3, edges, nullptr, &stats);
    EXPECT_EQ(sp.status, StatusCode::Ok);
    EXPECT_EQ(stats.solves, 1u);
    EXPECT_GT(stats.edge_scans, 0u);
    EXPECT_GT(stats.relaxations, 0u);
    EXPECT_GT(stats.iterations, 0u);
    EXPECT_EQ(stats.queue_pushes, 0u);  // queue counters are SPFA-only

    SolverStats spfa_stats;
    const auto sq = spfa_all_sources<std::int64_t>(3, edges, nullptr, &spfa_stats);
    EXPECT_EQ(sq.status, StatusCode::Ok);
    EXPECT_EQ(spfa_stats.solves, 1u);
    EXPECT_GT(spfa_stats.queue_pushes, 0u);
    EXPECT_GT(spfa_stats.queue_pops, 0u);

    // merge() sums every counter; any() keys off solves.
    SolverStats merged;
    EXPECT_FALSE(merged.any());
    merged.merge(stats);
    merged.merge(spfa_stats);
    EXPECT_TRUE(merged.any());
    EXPECT_EQ(merged.solves, 2u);
    EXPECT_EQ(merged.edge_scans, stats.edge_scans + spfa_stats.edge_scans);
}

TEST(ConstraintSystem, TwoDimensionalTheorem23) {
    // Theorem 2.3: feasible iff every constraint-graph cycle >= (0,0).
    DifferenceConstraintSystem<Vec2> ok;
    ok.add_variable();
    ok.add_variable();
    ok.add_constraint(0, 1, Vec2{0, -2});
    ok.add_constraint(1, 0, Vec2{1, -5});  // cycle weight (1,-7) >= (0,0)
    EXPECT_TRUE(ok.solve().feasible);

    DifferenceConstraintSystem<Vec2> bad;
    bad.add_variable();
    bad.add_variable();
    bad.add_constraint(0, 1, Vec2{0, -2});
    bad.add_constraint(1, 0, Vec2{0, 1});  // cycle weight (0,-1) < (0,0)
    EXPECT_FALSE(bad.solve().feasible);
}

TEST(Spfa, DifferentialAgainstBellmanFord1D) {
    // Two independent shortest-path implementations must agree on
    // feasibility and, when feasible, on every distance.
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        Rng rng(seed * 71 + 13);
        const int n = static_cast<int>(rng.uniform(2, 12));
        std::vector<WeightedEdge<std::int64_t>> edges;
        const int m = static_cast<int>(rng.uniform(1, 4 * n));
        for (int k = 0; k < m; ++k) {
            edges.push_back({static_cast<int>(rng.uniform(0, n - 1)),
                             static_cast<int>(rng.uniform(0, n - 1)), rng.uniform(-3, 8)});
        }
        const auto bf = bellman_ford_all_sources<std::int64_t>(n, edges);
        const auto sp = spfa_all_sources<std::int64_t>(n, edges);
        ASSERT_EQ(bf.has_negative_cycle, sp.has_negative_cycle) << "seed " << seed;
        if (!bf.has_negative_cycle) {
            EXPECT_EQ(bf.dist, sp.dist) << "seed " << seed;
        }
    }
}

TEST(Spfa, DifferentialAgainstBellmanFord2D) {
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        Rng rng(seed * 101 + 29);
        const int n = static_cast<int>(rng.uniform(2, 10));
        std::vector<WeightedEdge<Vec2>> edges;
        const int m = static_cast<int>(rng.uniform(1, 3 * n));
        for (int k = 0; k < m; ++k) {
            edges.push_back({static_cast<int>(rng.uniform(0, n - 1)),
                             static_cast<int>(rng.uniform(0, n - 1)),
                             Vec2{rng.uniform(-1, 4), rng.uniform(-5, 5)}});
        }
        const auto bf = bellman_ford_all_sources<Vec2>(n, edges);
        const auto sp = spfa_all_sources<Vec2>(n, edges);
        ASSERT_EQ(bf.has_negative_cycle, sp.has_negative_cycle) << "seed " << seed;
        if (!bf.has_negative_cycle) {
            EXPECT_EQ(bf.dist, sp.dist) << "seed " << seed;
        }
    }
}

TEST(Algorithms, SccOnTwoComponents) {
    // 0 <-> 1 strongly connected; 2 alone; 3 -> 2.
    Adjacency adj{{1}, {0}, {}, {2}};
    const auto comp = strongly_connected_components(adj);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_NE(comp[0], comp[2]);
    EXPECT_NE(comp[2], comp[3]);
    EXPECT_EQ(count_sccs(adj), 3);
}

TEST(Algorithms, TopologicalOrderRespectsEdges) {
    Adjacency adj{{1, 2}, {3}, {3}, {}};
    const auto order = topological_order(adj);
    ASSERT_TRUE(order.has_value());
    std::vector<int> pos(4);
    for (std::size_t k = 0; k < order->size(); ++k) pos[static_cast<std::size_t>((*order)[k])] = static_cast<int>(k);
    EXPECT_LT(pos[0], pos[1]);
    EXPECT_LT(pos[0], pos[2]);
    EXPECT_LT(pos[1], pos[3]);
    EXPECT_LT(pos[2], pos[3]);
}

TEST(Algorithms, CycleDetection) {
    EXPECT_TRUE(is_acyclic({{1}, {2}, {}}));
    EXPECT_FALSE(is_acyclic({{1}, {2}, {0}}));
    EXPECT_FALSE(is_acyclic({{0}}));  // self-loop
}

TEST(Algorithms, SimpleCyclesOnBidirectionalTriangle) {
    // Complete symmetric digraph on 3 nodes: three 2-cycles + two 3-cycles.
    Adjacency adj{{1, 2}, {0, 2}, {0, 1}};
    const auto cycles = simple_cycles(adj);
    EXPECT_EQ(cycles.size(), 5u);
}

TEST(Algorithms, SimpleCyclesFindsSelfLoops) {
    Adjacency adj{{0, 1}, {}};
    const auto cycles = simple_cycles(adj);
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_EQ(cycles[0], std::vector<int>{0});
}

TEST(Algorithms, SimpleCyclesHonorsCap) {
    Adjacency adj{{1, 2}, {0, 2}, {0, 1}};
    EXPECT_EQ(simple_cycles(adj, 2).size(), 2u);
}

TEST(Algorithms, Reachability) {
    Adjacency adj{{1}, {2}, {}, {1}};
    EXPECT_EQ(reachable_from(adj, 0), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(reachable_from(adj, 2), (std::vector<int>{2}));
}

}  // namespace
}  // namespace lf
