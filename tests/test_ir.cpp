// Unit tests for src/ir: lexer, parser, AST operations, printers and sema.

#include <gtest/gtest.h>

#include <sstream>

#include "ir/lexer.hpp"
#include "ir/parser.hpp"
#include "ir/sema.hpp"
#include "support/diagnostics.hpp"
#include "workloads/sources.hpp"

namespace lf::ir {
namespace {

TEST(Lexer, TokenizesAllKinds) {
    const auto tokens = tokenize("program p { a[i-2][j+1] = 0.25 * (b[i][j] - 3); }");
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens.front().kind, TokenKind::Identifier);
    EXPECT_EQ(tokens.front().text, "program");
    EXPECT_EQ(tokens.back().kind, TokenKind::End);

    int numbers = 0, integers = 0;
    for (const auto& t : tokens) {
        if (t.kind == TokenKind::Number) ++numbers;
        if (t.kind == TokenKind::Integer) ++integers;
    }
    EXPECT_EQ(numbers, 1);   // 0.25
    EXPECT_EQ(integers, 3);  // 2, 1, 3
}

TEST(Lexer, CommentsAreSkippedAndLocationsTracked) {
    const auto tokens = tokenize("# a comment line\n  loop");
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].text, "loop");
    EXPECT_EQ(tokens[0].loc.line, 2);
    EXPECT_EQ(tokens[0].loc.column, 3);
}

TEST(Lexer, ScientificNotation) {
    const auto tokens = tokenize("1.5e-3 2E4");
    EXPECT_EQ(tokens[0].kind, TokenKind::Number);
    EXPECT_DOUBLE_EQ(tokens[0].number, 1.5e-3);
    EXPECT_EQ(tokens[1].kind, TokenKind::Number);
    EXPECT_DOUBLE_EQ(tokens[1].number, 2e4);
}

TEST(Lexer, RejectsUnknownCharacter) {
    EXPECT_THROW((void)tokenize("a @ b"), Error);
}

TEST(Parser, ParsesFig2Verbatim) {
    const Program p = parse_program(workloads::sources::kFig2);
    EXPECT_EQ(p.name, "fig2");
    ASSERT_EQ(p.loops.size(), 4u);
    EXPECT_EQ(p.loops[0].label, "A");
    EXPECT_EQ(p.loops[2].label, "C");
    ASSERT_EQ(p.loops[2].body.size(), 2u);
    EXPECT_EQ(p.loops[2].body[0].target.array, "c");
    EXPECT_EQ(p.loops[2].body[0].target.offset, Vec2(0, 0));
    // c[i][j] = b[i][j+2] - a[i][j-1] + b[i][j-1]
    const auto reads = p.loops[2].body[0].reads();
    ASSERT_EQ(reads.size(), 3u);
    EXPECT_EQ(reads[0].array, "b");
    EXPECT_EQ(reads[0].offset, Vec2(0, 2));
    EXPECT_EQ(reads[1].array, "a");
    EXPECT_EQ(reads[1].offset, Vec2(0, -1));
}

TEST(Parser, RoundTripThroughPrinter) {
    const Program p1 = parse_program(workloads::sources::kJacobiPair);
    const Program p2 = parse_program(p1.str());
    ASSERT_EQ(p1.loops.size(), p2.loops.size());
    for (std::size_t k = 0; k < p1.loops.size(); ++k) {
        EXPECT_EQ(p1.loops[k].label, p2.loops[k].label);
        ASSERT_EQ(p1.loops[k].body.size(), p2.loops[k].body.size());
        for (std::size_t s = 0; s < p1.loops[k].body.size(); ++s) {
            EXPECT_EQ(p1.loops[k].body[s].str(), p2.loops[k].body[s].str());
        }
    }
}

TEST(Parser, SubscriptsMustUseTheRightIndexVariable) {
    EXPECT_THROW((void)parse_program("program p { loop A { a[j][i] = 1.0; } }"), Error);
    EXPECT_THROW((void)parse_program("program p { loop A { a[i][k] = 1.0; } }"), Error);
}

TEST(Parser, RejectsNonConstantOffsets) {
    EXPECT_THROW((void)parse_program("program p { loop A { a[i*2][j] = 1.0; } }"), Error);
}

TEST(Parser, ReportsLocationInErrors) {
    try {
        (void)parse_program("program p {\n  loop A {\n    a[i][j] = ;\n  }\n}");
        FAIL() << "expected parse error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos) << e.what();
    }
}

TEST(Parser, RejectsEmptyLoopAndMissingSemicolon) {
    EXPECT_THROW((void)parse_program("program p { loop A { } }"), Error);
    EXPECT_THROW((void)parse_program("program p { loop A { a[i][j] = 1.0 } }"), Error);
}

TEST(Parser, PrecedenceAndUnaryMinus) {
    const Program p = parse_program("program p { loop A { a[i][j] = -b[i-1][j] + 2 * 3; } }");
    std::ostringstream os;
    p.loops[0].body[0].value->print(os);
    EXPECT_EQ(os.str(), "((-b[i-1][j]) + (2.0 * 3.0))");
}

TEST(Ast, EvalArithmetic) {
    // 2*(3+4) - (-5) = 19, no array reads involved.
    const Program p =
        parse_program("program p { loop A { a[i][j] = 2 * (3 + 4) - (-5); } }");
    struct Zero final : ValueSource {
        using ValueSource::load;
        double load(const std::string&, const Vec2&) const override { return 0; }
    } zero;
    EXPECT_DOUBLE_EQ(p.loops[0].body[0].eval(zero, 0, 0), 19.0);
}

TEST(Ast, EvalReadsUseShiftedCells) {
    const Program p = parse_program("program p { loop A { a[i][j] = b[i-2][j+1]; } }");
    struct Probe final : ValueSource {
        using ValueSource::load;
        double load(const std::string& array, const Vec2& cell) const override {
            EXPECT_EQ(array, "b");
            return static_cast<double>(100 * cell.x + cell.y);
        }
    } probe;
    EXPECT_DOUBLE_EQ(p.loops[0].body[0].eval(probe, 5, 7), 100 * 3 + 8);
}

TEST(Ast, ShiftedStatementMatchesPaperFigure3) {
    // r(C) = (-1,0) turns "c[i][j] = ... c[i-1][j]" into "c[i-1][j] = ... c[i-2][j]".
    const Program p = parse_program(workloads::sources::kFig2);
    const Statement& d_stmt = p.loops[2].body[1];  // d[i][j] = c[i-1][j];
    const Statement shifted = d_stmt.shifted(Vec2{-1, 0});
    EXPECT_EQ(shifted.str(), "d[i-1][j] = c[i-2][j];");
}

TEST(Ast, ProgramQueries) {
    const Program p = parse_program(workloads::sources::kFig2);
    EXPECT_EQ(p.written_arrays(), (std::vector<std::string>{"a", "b", "c", "d", "e"}));
    EXPECT_EQ(p.arrays(), (std::vector<std::string>{"a", "b", "c", "d", "e"}));
    EXPECT_EQ(p.max_offset(), 2);
    EXPECT_EQ(p.loops[0].body_cost(), 2);  // 1 statement + 1 read
    EXPECT_EQ(p.loops[2].body_cost(), 6);  // 2 statements + 4 reads
}

TEST(Sema, RejectsDuplicateLabels) {
    EXPECT_THROW((void)parse_program("program p { loop A { a[i][j] = 1.0; } "
                                     "loop A { b[i][j] = 2.0; } }"),
                 Error);
}

TEST(Sema, RejectsNonDoallSelfDependence) {
    // a[i][j] depends on a[i][j-1] within the same DOALL loop.
    EXPECT_THROW((void)parse_program("program p { loop A { a[i][j] = a[i][j-1]; } }"), Error);
}

TEST(Sema, RejectsNonDoallWriteWriteConflict) {
    EXPECT_THROW((void)parse_program("program p { loop A { a[i][j] = 1.0; a[i][j+1] = 2.0; } }"),
                 Error);
}

TEST(Sema, AcceptsIntraInstanceForwarding) {
    // Reading one's own write at the same (i, j) is fine.
    EXPECT_NO_THROW((void)parse_program(
        "program p { loop A { a[i][j] = 1.0; b[i][j] = a[i][j] + 1.0; } }"));
}

TEST(Sema, AcceptsCarriedSelfDependence) {
    EXPECT_NO_THROW((void)parse_program("program p { loop A { a[i][j] = a[i-1][j+3]; } }"));
}

TEST(Sema, AllGallerySourcesValidate) {
    EXPECT_NO_THROW((void)parse_program(workloads::sources::kFig2));
    EXPECT_NO_THROW((void)parse_program(workloads::sources::kFig8));
    EXPECT_NO_THROW((void)parse_program(workloads::sources::kJacobiPair));
    EXPECT_NO_THROW((void)parse_program(workloads::sources::kIirChain));
}

}  // namespace
}  // namespace lf::ir
