// End-to-end tests for the multi-dimensional program pipeline:
// DSL -> MldgN -> n-D fusion plan -> wavefront execution, verified
// bit-exact against the reference schedule.

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "exec/engines_nd.hpp"
#include "front/parse.hpp"
#include "support/diagnostics.hpp"

namespace lf {
namespace {

// The historical mdir:: spellings, resolved to where they live now: the
// dimension-generic front end, the shared dependence analyzer, and the
// N-D exec/codegen layers.
using MdProgram = front::BasicProgram<VecN>;
using analysis::build_mldg_nd;
using exec::MdArrayStore;
using exec::MdDomain;
using exec::MdExecStats;
using exec::MdVerification;
using exec::run_original_md;
using exec::verify_md_fusion;

MdProgram parse_md_program(std::string_view source) {
    return front::parse_basic_program<VecN>(source);
}

constexpr std::string_view kVolume3d = R"(
# 3-D volume pipeline: time (i1) x plane (i2) x column (j).
program volume dim 3 {
  loop Smooth {
    s[i1][i2][j] = 0.25 * (v[i1-1][i2][j-1] + v[i1-1][i2][j+1])
                 + 0.5 * s[i1-1][i2+1][j];
  }
  loop Gradient {
    g[i1][i2][j] = s[i1][i2][j-1] - s[i1][i2][j+1];
  }
  loop Volume {
    v[i1][i2][j] = g[i1][i2-1][j-2] + g[i1][i2-1][j+2] + 0.1 * v[i1-1][i2][j];
  }
}
)";

TEST(MdParser, ParsesThreeDimensionalProgram) {
    const MdProgram p = parse_md_program(kVolume3d);
    EXPECT_EQ(p.name, "volume");
    EXPECT_EQ(p.dim, 3);
    ASSERT_EQ(p.loops.size(), 3u);
    EXPECT_EQ(p.loops[0].label, "Smooth");
    const auto reads = p.loops[0].body[0].reads();
    ASSERT_EQ(reads.size(), 3u);
    EXPECT_EQ(reads[0].offset, VecN({-1, 0, -1}));
    EXPECT_EQ(reads[2].offset, VecN({-1, 1, 0}));
    EXPECT_EQ(p.max_offset(), 2);
}

TEST(MdParser, RoundTripThroughPrinter) {
    const MdProgram p1 = parse_md_program(kVolume3d);
    const MdProgram p2 = parse_md_program(p1.str());
    ASSERT_EQ(p1.loops.size(), p2.loops.size());
    for (std::size_t k = 0; k < p1.loops.size(); ++k) {
        ASSERT_EQ(p1.loops[k].body.size(), p2.loops[k].body.size());
        for (std::size_t s = 0; s < p1.loops[k].body.size(); ++s) {
            EXPECT_EQ(p1.loops[k].body[s].str(), p2.loops[k].body[s].str());
        }
    }
}

TEST(MdParser, EnforcesLevelVariables) {
    EXPECT_THROW((void)parse_md_program("program p dim 3 { loop A { a[i2][i1][j] = 1.0; } }"),
                 Error);
    EXPECT_THROW((void)parse_md_program("program p dim 3 { loop A { a[i1][j][j] = 1.0; } }"),
                 Error);
}

TEST(MdParser, RejectsNonDoallLoop) {
    EXPECT_THROW(
        (void)parse_md_program("program p dim 3 { loop A { a[i1][i2][j] = a[i1][i2][j-1]; } }"),
        Error);
}

TEST(MdParser, ReportsLocationInParseErrors) {
    // Missing third subscript on line 3: the diagnostic must point there.
    const std::string_view bad =
        "program p dim 3 {\n"
        "  loop A {\n"
        "    a[i1][i2] = 1.0;\n"
        "  }\n"
        "}\n";
    try {
        (void)parse_md_program(bad);
        FAIL() << "expected lf::Error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos) << e.what();
    }
}

TEST(MdParser, ReportsLocationInSemaErrors) {
    // Duplicate loop label: the sema diagnostic carries the second label's
    // line (line 3 of the source).
    const std::string_view bad =
        "program p dim 3 {\n"
        "  loop A { a[i1][i2][j] = 1.0; }\n"
        "  loop A { b[i1][i2][j] = 2.0; }\n"
        "}\n";
    try {
        (void)parse_md_program(bad);
        FAIL() << "expected lf::Error";
    } catch (const Error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("duplicate loop label"), std::string::npos) << msg;
        EXPECT_NE(msg.find("at 3:"), std::string::npos) << msg;
    }
}

TEST(MdAnalysis, Volume3dGraphShape) {
    const MdProgram p = parse_md_program(kVolume3d);
    const MldgN g = build_mldg_nd(p);
    EXPECT_EQ(g.num_nodes(), 3);
    // Smooth -> Gradient: reads s[i1][i2][j-+1] => {(0,0,1),(0,0,-1)}, hard.
    const auto sg = g.find_edge(0, 1);
    ASSERT_TRUE(sg.has_value());
    EXPECT_EQ(g.edge(*sg).vectors, (std::vector<VecN>{VecN{0, 0, -1}, VecN{0, 0, 1}}));
    EXPECT_TRUE(g.edge(*sg).is_hard());
    // Gradient -> Volume: reads g[i1][i2-1][j-+2] => {(0,1,2),(0,1,-2)}.
    const auto gv = g.find_edge(1, 2);
    ASSERT_TRUE(gv.has_value());
    EXPECT_EQ(g.edge(*gv).vectors, (std::vector<VecN>{VecN{0, 1, -2}, VecN{0, 1, 2}}));
    // Volume -> Smooth: v[i1-1][i2][j-+1] => {(1,0,1),(1,0,-1)}, backward.
    const auto vs = g.find_edge(2, 0);
    ASSERT_TRUE(vs.has_value());
    EXPECT_TRUE(g.edge(*vs).is_hard());
    EXPECT_TRUE(is_schedulable_nd(g));
}

TEST(MdStore, DeterministicBoundaryValues) {
    const MdProgram p = parse_md_program(kVolume3d);
    const MdDomain dom{{3, 3, 3}};
    MdArrayStore s1(p, dom), s2(p, dom);
    EXPECT_DOUBLE_EQ(s1.load("v", VecN{-1, 2, 0}), s2.load("v", VecN{-1, 2, 0}));
    EXPECT_NE(MdArrayStore::boundary_value("v", VecN{0, 0, 0}),
              MdArrayStore::boundary_value("v", VecN{0, 0, 1}));
    EXPECT_THROW((void)s1.load("v", VecN{99, 0, 0}), Error);
}

TEST(MdExec, OriginalBarrierCount) {
    const MdProgram p = parse_md_program(kVolume3d);
    const MdDomain dom{{4, 3, 5}};
    MdArrayStore store(p, dom);
    const MdExecStats stats = run_original_md(p, dom, store);
    // 3 loops x 5 x 4 prefix points.
    EXPECT_EQ(stats.barriers, 3 * 5 * 4);
    EXPECT_EQ(stats.instances, 3 * dom.points());
}

TEST(MdExec, WavefrontMatchesOriginalOnVolume3d) {
    const MdProgram p = parse_md_program(kVolume3d);
    const MdVerification result = verify_md_fusion(p, MdDomain{{6, 5, 7}});
    EXPECT_TRUE(result.equivalent) << result.detail;
    EXPECT_EQ(result.original.instances, result.transformed.instances);
    EXPECT_GT(result.transformed.barriers, 0);
}

TEST(MdExec, WavefrontMatchesOnAcyclicChain) {
    // Acyclic: the n-D driver picks the outermost-carried plan; wavefront
    // over s = (1,0,...,0) degenerates to one phase per outermost iteration.
    const MdProgram p = parse_md_program(R"(
      program chain dim 3 {
        loop A { a[i1][i2][j] = x[i1][i2][j] + 1.0; }
        loop B { b[i1][i2][j] = a[i1][i2][j+2] - a[i1][i2-1][j]; }
        loop C { c[i1][i2][j] = b[i1-1][i2+1][j-1]; }
      }
    )");
    const MldgN g = build_mldg_nd(p);
    const NdFusionPlan plan = plan_fusion_nd(g);
    EXPECT_EQ(plan.level, NdParallelism::OutermostCarried);

    const MdDomain dom{{5, 4, 6}};
    const MdVerification result = verify_md_fusion(p, dom);
    EXPECT_TRUE(result.equivalent) << result.detail;
    // One barrier per occupied outermost level: levels -2..5 after retiming
    // by at most 2 -> at most ext+1+spread phases.
    EXPECT_LE(result.transformed.barriers, dom.ext[0] + 1 + 2);
    EXPECT_LT(result.transformed.barriers, result.original.barriers);
}

TEST(MdExec, FourDimensionalPipelineVerifies) {
    const MdProgram p = parse_md_program(R"(
      program hyper dim 4 {
        loop A { a[i1][i2][i3][j] = x[i1][i2][i3][j] + 0.5 * a[i1-1][i2][i3+1][j-1]; }
        loop B { b[i1][i2][i3][j] = a[i1][i2][i3][j-1] + a[i1][i2][i3][j+1]; }
        loop C { c[i1][i2][i3][j] = b[i1][i2-1][i3][j+2] - a[i1][i2][i3-1][j]; }
      }
    )");
    const MdVerification result = verify_md_fusion(p, MdDomain{{3, 3, 3, 4}});
    EXPECT_TRUE(result.equivalent) << result.detail;
}

}  // namespace
}  // namespace lf
