// End-to-end tests for the n-D C emitter: the generated program compiles
// with the system C compiler, self-verifies (original vs fused), and its
// checksum matches the interpreter exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "exec/store_nd.hpp"
#include "fusion/multidim.hpp"
#include "analysis/dependence.hpp"
#include "transform/codegen_nd.hpp"
#include "front/parse.hpp"

namespace lf {
namespace {

// The historical mdir:: spellings, resolved to where they live now: the
// dimension-generic front end, the shared dependence analyzer, and the
// N-D exec/codegen layers.
using MdProgram = front::BasicProgram<VecN>;
using analysis::build_mldg_nd;
using exec::MdDomain;
using transform::emit_md_c_program;
using transform::expected_md_c_checksum;

MdProgram parse_md_program(std::string_view source) {
    return front::parse_basic_program<VecN>(source);
}

bool have_cc() {
    static const bool available = std::system("cc --version > /dev/null 2>&1") == 0;
    return available;
}

std::string compile_and_run(const std::string& source, const std::string& tag) {
    const std::string base = std::string(::testing::TempDir()) + "/lf_mdgen_" + tag;
    {
        std::ofstream out(base + ".c");
        out << source;
    }
    if (std::system(("cc -O2 -o " + base + " " + base + ".c 2> " + base + ".log").c_str()) != 0) {
        return "";
    }
    FILE* pipe = ::popen((base + " 2>/dev/null").c_str(), "r");
    if (pipe == nullptr) return "";
    char line[256] = {0};
    const char* got = std::fgets(line, sizeof(line), pipe);
    ::pclose(pipe);
    if (got == nullptr) return "";
    std::string s(line);
    if (!s.empty() && s.back() == '\n') s.pop_back();
    return s;
}

constexpr std::string_view kVolume3d = R"(
program volume dim 3 {
  loop Smooth {
    s[i1][i2][j] = 0.25 * (v[i1-1][i2][j-1] + v[i1-1][i2][j+1])
                 + 0.5 * s[i1-1][i2+1][j];
  }
  loop Gradient {
    g[i1][i2][j] = s[i1][i2][j-1] - s[i1][i2][j+1];
  }
  loop Volume {
    v[i1][i2][j] = g[i1][i2-1][j-2] + g[i1][i2-1][j+2] + 0.1 * v[i1-1][i2][j];
  }
}
)";

TEST(MdCodegenC, StructureContainsBothFormsAndGuards) {
    const MdProgram p = parse_md_program(kVolume3d);
    const NdFusionPlan plan = plan_fusion_nd(build_mldg_nd(p));
    const std::string src = emit_md_c_program(p, plan, MdDomain{{5, 5, 5}});
    EXPECT_NE(src.find("static void run_original(void)"), std::string::npos);
    EXPECT_NE(src.find("static void run_fused(void)"), std::string::npos);
    EXPECT_NE(src.find("#define AT(arr, c0, c1, c2)"), std::string::npos);
    EXPECT_NE(src.find("schedule s = (5,4,1)"), std::string::npos);
}

TEST(MdCodegenC, CompiledVolume3dAgreesWithInterpreter) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    const MdProgram p = parse_md_program(kVolume3d);
    const NdFusionPlan plan = plan_fusion_nd(build_mldg_nd(p));
    const MdDomain dom{{6, 5, 7}};
    const std::string output = compile_and_run(emit_md_c_program(p, plan, dom), "vol3d");
    ASSERT_FALSE(output.empty()) << "compilation or execution failed";
    EXPECT_EQ(output, "OK " + expected_md_c_checksum(p, dom));
}

TEST(MdCodegenC, CompiledFourDimensionalPipelineAgrees) {
    if (!have_cc()) GTEST_SKIP() << "no system C compiler";
    const MdProgram p = parse_md_program(R"(
      program hyper dim 4 {
        loop A { a[i1][i2][i3][j] = x[i1][i2][i3][j] + 0.5 * a[i1-1][i2][i3+1][j-1]; }
        loop B { b[i1][i2][i3][j] = a[i1][i2][i3][j-1] + a[i1][i2][i3][j+1]; }
        loop C { c[i1][i2][i3][j] = b[i1][i2-1][i3][j+2] - a[i1][i2][i3-1][j]; }
      }
    )");
    const NdFusionPlan plan = plan_fusion_nd(build_mldg_nd(p));
    const MdDomain dom{{3, 3, 3, 4}};
    const std::string output = compile_and_run(emit_md_c_program(p, plan, dom), "hyper4d");
    ASSERT_FALSE(output.empty()) << "compilation or execution failed";
    EXPECT_EQ(output, "OK " + expected_md_c_checksum(p, dom));
}

}  // namespace
}  // namespace lf
