// Unit tests for src/ldg: the MLDG model, hard edges, legality tiers,
// retiming and its invariants -- checked against the paper's own examples.

#include <gtest/gtest.h>

#include <numeric>

#include "support/diagnostics.hpp"
#include "graph/algorithms.hpp"
#include "ldg/legality.hpp"
#include "ldg/mldg.hpp"
#include "ldg/retiming.hpp"
#include "workloads/gallery.hpp"

namespace lf {
namespace {

using workloads::fig14_graph;
using workloads::fig14_graph_as_printed;
using workloads::fig2_graph;
using workloads::fig8_graph;

TEST(Mldg, Fig2StructureMatchesSection22) {
    const Mldg g = fig2_graph();
    EXPECT_EQ(g.num_nodes(), 4);
    EXPECT_EQ(g.num_edges(), 6);
    // delta_L values reported in Section 2.2.
    EXPECT_EQ(g.edge(*g.find_edge(0, 1)).delta(), Vec2(1, 1));   // A->B
    EXPECT_EQ(g.edge(*g.find_edge(1, 2)).delta(), Vec2(0, -2));  // B->C
    EXPECT_EQ(g.edge(*g.find_edge(2, 3)).delta(), Vec2(0, -1));  // C->D
    EXPECT_EQ(g.edge(*g.find_edge(0, 2)).delta(), Vec2(0, 1));   // A->C
    EXPECT_EQ(g.edge(*g.find_edge(3, 0)).delta(), Vec2(2, 1));   // D->A
    EXPECT_EQ(g.edge(*g.find_edge(2, 2)).delta(), Vec2(1, 0));   // C->C
}

TEST(Mldg, Fig2HardEdgeIsExactlyBToC) {
    const Mldg g = fig2_graph();
    for (int e = 0; e < g.num_edges(); ++e) {
        const bool expect_hard = g.edge(e).from == 1 && g.edge(e).to == 2;
        EXPECT_EQ(g.edge(e).is_hard(), expect_hard)
            << g.node(g.edge(e).from).name << "->" << g.node(g.edge(e).to).name;
    }
}

TEST(Mldg, BackwardAndSelfEdgeClassification) {
    const Mldg g = fig2_graph();
    EXPECT_TRUE(g.is_backward_edge(*g.find_edge(3, 0)));   // D->A
    EXPECT_FALSE(g.is_backward_edge(*g.find_edge(0, 1)));  // A->B
    EXPECT_TRUE(g.is_self_edge(*g.find_edge(2, 2)));       // C->C
    EXPECT_FALSE(g.is_self_edge(*g.find_edge(0, 1)));
}

TEST(Mldg, AddEdgeMergesVectorSetsAndDeduplicates) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int e1 = g.add_edge(a, b, {{2, 1}});
    const int e2 = g.add_edge(a, b, {{1, 1}, {2, 1}});
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(g.num_edges(), 1);
    EXPECT_EQ(g.edge(e1).vectors, (std::vector<Vec2>{{1, 1}, {2, 1}}));
    EXPECT_EQ(g.edge(e1).delta(), Vec2(1, 1));
}

TEST(Mldg, RejectsEmptyVectorSetAndBadIds) {
    Mldg g;
    g.add_node("A");
    EXPECT_THROW(g.add_edge(0, 0, {}), Error);
    EXPECT_THROW(g.add_edge(0, 3, {{1, 0}}), Error);
}

TEST(Mldg, CycleWeightsMatchSection22) {
    // delta_L(c1) = (3,-1) for A->B->C->D->A, delta_L(c2) = (2,1) for A->C->D->A.
    const Mldg g = fig2_graph();
    const std::vector<int> c1{*g.find_edge(0, 1), *g.find_edge(1, 2), *g.find_edge(2, 3),
                              *g.find_edge(3, 0)};
    const std::vector<int> c2{*g.find_edge(0, 2), *g.find_edge(2, 3), *g.find_edge(3, 0)};
    EXPECT_EQ(g.path_weight(c1), Vec2(3, -1));
    EXPECT_EQ(g.path_weight(c2), Vec2(2, 1));
}

TEST(Mldg, TotalVectorsCountsAcrossEdges) {
    EXPECT_EQ(fig2_graph().total_vectors(), 8u);
    EXPECT_EQ(fig8_graph().total_vectors(), 10u);
}

TEST(Mldg, PathWeightOverEmptySpanIsZero) {
    const Mldg g = fig2_graph();
    EXPECT_EQ(g.path_weight({}), Vec2(0, 0));
}

TEST(Mldg, DotAndSummaryMentionEveryNode) {
    const Mldg g = fig2_graph();
    const std::string dot = g.to_dot("fig2");
    const std::string sum = g.summary();
    for (int v = 0; v < g.num_nodes(); ++v) {
        EXPECT_NE(sum.find(g.node(v).name), std::string::npos);
    }
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("style=bold"), std::string::npos);  // hard edge marker
}

TEST(Legality, PaperGraphsAreProgramModelLegal) {
    EXPECT_TRUE(is_legal_mldg(fig2_graph()));
    EXPECT_TRUE(is_legal_mldg(fig8_graph()));
    EXPECT_TRUE(is_legal_mldg(workloads::jacobi_pair_graph()));
    EXPECT_TRUE(is_legal_mldg(workloads::iir_chain_graph()));
}

TEST(Legality, LegalImpliesSchedulable) {
    EXPECT_TRUE(is_schedulable(fig2_graph()));
    EXPECT_TRUE(is_schedulable(fig8_graph()));
    EXPECT_TRUE(is_schedulable(workloads::jacobi_pair_graph()));
    EXPECT_TRUE(is_schedulable(workloads::iir_chain_graph()));
}

TEST(Legality, Fig14IsSchedulableButNotProgramModelLegal) {
    // Figure 14 carries same-outer-iteration dependences against program
    // order (D->C with (0,-2)): not executable as a Figure-1 loop sequence,
    // yet schedulable (Theorem 4.4 applies).
    const Mldg g = fig14_graph();
    EXPECT_FALSE(is_legal_mldg(g));
    EXPECT_TRUE(is_schedulable(g));
}

TEST(Legality, Fig14AsPrintedViolatesTheorem44Hypothesis) {
    // As printed, B->C->D->E->B weighs exactly (0,0): no execution order
    // exists. Documented discrepancy (DESIGN.md).
    const Mldg g = fig14_graph_as_printed();
    const auto rep = check_schedulable(g);
    EXPECT_FALSE(rep.legal);
    ASSERT_FALSE(rep.violations.empty());
}

TEST(Legality, NegativeXDependenceIsIllegal) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{-1, 0}});
    EXPECT_FALSE(is_legal_mldg(g));
    EXPECT_FALSE(is_schedulable(g));
}

TEST(Legality, NonDoallSelfDependenceIsIllegal) {
    Mldg g;
    const int a = g.add_node("A");
    g.add_edge(a, a, {{0, 1}});
    const auto rep = check_mldg_legality(g);
    EXPECT_FALSE(rep.legal);
    // Also unschedulable? (0,1) self cycle weighs (0,1) > (0,0): schedulable
    // as dataflow, even though not a valid Figure-1 program.
    EXPECT_TRUE(is_schedulable(g));
}

TEST(Legality, ZeroXCycleWithNonPositiveYIsUnschedulable) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{0, 2}});
    g.add_edge(b, a, {{0, -2}});  // cycle weight (0,0)
    EXPECT_FALSE(is_schedulable(g));
}

TEST(Legality, DirectFusionLegalityTheorem31) {
    // All vectors >= (0,0): legal; any vector < (0,0): illegal.
    Mldg ok;
    const int a = ok.add_node("A");
    const int b = ok.add_node("B");
    ok.add_edge(a, b, {{0, 0}, {1, -3}});
    EXPECT_TRUE(is_fusion_legal(ok));

    Mldg bad = fig2_graph();  // B->C carries (0,-2)
    EXPECT_FALSE(is_fusion_legal(bad));
}

TEST(Legality, ZeroZeroAgainstBodyOrderIsIllegal) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(b, a, {{0, 0}});  // backward same-point dependence
    EXPECT_FALSE(is_fusion_legal(g));                      // program order A,B
    EXPECT_TRUE(is_fusion_legal(g, std::vector<int>{b, a}));  // reordered body
}

TEST(Legality, FusedInnerDoallPredicate) {
    Mldg doall;
    const int a = doall.add_node("A");
    const int b = doall.add_node("B");
    doall.add_edge(a, b, {{0, 0}, {1, -7}});
    doall.add_edge(b, a, {{1, 0}});
    EXPECT_TRUE(is_fused_inner_doall(doall));

    Mldg serial;
    const int c = serial.add_node("A");
    const int d = serial.add_node("B");
    serial.add_edge(c, d, {{0, 1}});  // forward inner-carried: serializes rows
    EXPECT_FALSE(is_fused_inner_doall(serial));
}

TEST(Legality, FusedBodyOrderTopologicallySortsZeroDependences) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    g.add_edge(c, a, {{0, 0}});  // C must precede A at each point
    g.add_edge(a, b, {{1, 1}});  // carried: no ordering constraint
    const auto order = fused_body_order(g);
    ASSERT_TRUE(order.has_value());
    EXPECT_EQ(*order, (std::vector<int>{c, a, b}));
}

TEST(Legality, FusedBodyOrderDetectsZeroCycle) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{0, 0}});
    g.add_edge(b, a, {{0, 0}});
    EXPECT_FALSE(fused_body_order(g).has_value());
}

TEST(Legality, StrictScheduleVector) {
    // Section 2.3's example: s = (1,0) is strict for the retimed Figure 3(a)
    // graph, whose vectors all have positive x or are (0,0).
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {{1, -2}});
    g.add_edge(b, a, {{1, 1}, {0, 0}});
    EXPECT_TRUE(is_strict_schedule_vector(g, Vec2{1, 0}));
    EXPECT_FALSE(is_strict_schedule_vector(g, Vec2{0, 1}));
}

TEST(Retiming, Section23WorkedExample) {
    // r(A)=r(B)=(0,0), r(C)=(-1,0), r(D)=(-1,-1): edge D->A becomes (1,0) and
    // cycle weights stay (3,-1) and (2,1).
    const Mldg g = fig2_graph();
    Retiming r(std::vector<Vec2>{{0, 0}, {0, 0}, {-1, 0}, {-1, -1}});
    const Mldg gr = r.apply(g);
    EXPECT_EQ(gr.edge(*gr.find_edge(3, 0)).delta(), Vec2(1, 0));
    EXPECT_EQ(gr.edge(*gr.find_edge(3, 0)).vectors, (std::vector<Vec2>{{1, 0}}));

    const std::vector<int> c1{*gr.find_edge(0, 1), *gr.find_edge(1, 2), *gr.find_edge(2, 3),
                              *gr.find_edge(3, 0)};
    EXPECT_EQ(gr.path_weight(c1), Vec2(3, -1));
    const std::vector<int> c2{*gr.find_edge(0, 2), *gr.find_edge(2, 3), *gr.find_edge(3, 0)};
    EXPECT_EQ(gr.path_weight(c2), Vec2(2, 1));
}

TEST(Retiming, CycleWeightInvarianceOverAllSimpleCycles) {
    const Mldg g = fig2_graph();
    Retiming r(std::vector<Vec2>{{3, -2}, {-1, 4}, {0, 7}, {-5, 0}});
    const Mldg gr = r.apply(g);

    // Enumerate all simple cycles (by node sequence) and compare weights.
    const auto cycles = simple_cycles(g.adjacency());
    ASSERT_FALSE(cycles.empty());
    for (const auto& cyc : cycles) {
        Vec2 w_before{0, 0}, w_after{0, 0};
        for (std::size_t k = 0; k < cyc.size(); ++k) {
            const int u = cyc[k];
            const int v = cyc[(k + 1) % cyc.size()];
            w_before += g.edge(*g.find_edge(u, v)).delta();
            w_after += gr.edge(*gr.find_edge(u, v)).delta();
        }
        EXPECT_EQ(w_before, w_after);
    }
}

TEST(Retiming, SelfEdgesAreInvariant) {
    const Mldg g = fig2_graph();
    Retiming r(std::vector<Vec2>{{9, 9}, {-9, -9}, {5, -5}, {0, 0}});
    const Mldg gr = r.apply(g);
    EXPECT_EQ(gr.edge(*gr.find_edge(2, 2)).vectors, g.edge(*g.find_edge(2, 2)).vectors);
}

TEST(Retiming, NormalizeMakesComponentsNonNegativeWithZeroMinimum) {
    Retiming r(std::vector<Vec2>{{-2, 3}, {0, -1}, {4, 0}});
    r.normalize();
    EXPECT_EQ(r.of(0), Vec2(0, 4));
    EXPECT_EQ(r.of(1), Vec2(2, 0));
    EXPECT_EQ(r.of(2), Vec2(6, 1));
}

TEST(Retiming, ApplyRejectsSizeMismatch) {
    const Mldg g = fig2_graph();
    Retiming r(2);
    EXPECT_THROW(r.apply(g), Error);
}

}  // namespace
}  // namespace lf
