// Tests for the n-dimensional generalization (VecN, MldgN, n-D constraint
// systems, llofra_nd, the generalized Lemma 4.3 schedule and the n-D driver).

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "front/parse.hpp"
#include "fusion/certify.hpp"
#include "fusion/multidim.hpp"
#include "graph/constraint_system_nd.hpp"
#include "ldg/mldg_nd.hpp"
#include "workloads/sources.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"
#include "support/lexvec.hpp"

namespace lf {
namespace {

TEST(VecN, LexicographicOrderAndArithmetic) {
    EXPECT_LT(VecN({0, 5, 5}), VecN({1, -9, -9}));
    EXPECT_LT(VecN({1, 0, -1}), VecN({1, 0, 0}));
    EXPECT_EQ(VecN({1, 2}) + VecN({3, -4}), VecN({4, -2}));
    EXPECT_EQ(-VecN({1, -2}), VecN({-1, 2}));
    EXPECT_EQ(VecN({1, 2, 3}).dot(VecN({4, 5, 6})), 4 + 10 + 18);
    EXPECT_TRUE(VecN({0, 0}).is_zero());
    EXPECT_EQ(VecN({0, 0, 7, 1}).leading_index(), 2);
    EXPECT_EQ(VecN::zeros(3).leading_index(), 3);
    EXPECT_EQ(VecN({1, -2, 3}).str(), "(1,-2,3)");
    EXPECT_THROW((void)(VecN({1}) + VecN({1, 2})), Error);
}

TEST(VecN, TranslationInvariance) {
    const VecN u{0, 3, -1}, v{1, -7, 2}, w{-2, 11, 5};
    ASSERT_LT(u, v);
    EXPECT_LT(u + w, v + w);
}

TEST(NdConstraintSystem, FeasibleAndInfeasible) {
    NdDifferenceConstraintSystem ok(3);
    ok.add_variable();
    ok.add_variable();
    ok.add_constraint(0, 1, VecN{0, -2, 5});
    ok.add_constraint(1, 0, VecN{1, 1, -9});  // cycle (1,-1,-4) > 0
    const auto s = ok.solve();
    ASSERT_TRUE(s.feasible);
    EXPECT_LE(s.values[1] - s.values[0], VecN({0, -2, 5}));
    EXPECT_LE(s.values[0] - s.values[1], VecN({1, 1, -9}));

    NdDifferenceConstraintSystem bad(3);
    bad.add_variable();
    bad.add_variable();
    bad.add_constraint(0, 1, VecN{0, -2, 5});
    bad.add_constraint(1, 0, VecN{0, 1, -9});  // cycle (0,-1,-4) < 0
    EXPECT_FALSE(bad.solve().feasible);
}

MldgN stencil_3d() {
    // A 3-D workload: time x plane x column, three stages with hard edges
    // and a carried feedback -- the natural 3-D analogue of fig2.
    MldgN g(3);
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    g.add_edge(a, b, {VecN{0, 0, -2}, VecN{0, 0, 1}});  // hard, fusion-preventing
    g.add_edge(b, c, {VecN{0, 1, -1}});
    g.add_edge(c, a, {VecN{1, -1, 0}});
    g.add_edge(c, c, {VecN{0, 0, 0} + VecN{1, 0, 2}});
    return g;
}

TEST(MldgN, HardEdgeGeneralization) {
    const MldgN g = stencil_3d();
    EXPECT_TRUE(g.edge(*g.find_edge(0, 1)).is_hard());   // same prefix (0,0)
    EXPECT_FALSE(g.edge(*g.find_edge(1, 2)).is_hard());
    MldgN h(3);
    const int u = h.add_node("U");
    const int v = h.add_node("V");
    // Different middle components: not hard (the plane level can separate).
    h.add_edge(u, v, {VecN{0, 1, -2}, VecN{0, 2, 1}});
    EXPECT_FALSE(h.edge(0).is_hard());
}

TEST(MldgN, SchedulabilityChecks) {
    EXPECT_TRUE(is_schedulable_nd(stencil_3d()));

    MldgN neg(3);
    const int a = neg.add_node("A");
    const int b = neg.add_node("B");
    neg.add_edge(a, b, {VecN{0, -1, 0}});  // backward at a sequential level
    EXPECT_FALSE(is_schedulable_nd(neg));

    MldgN zero_cycle(3);
    const int u = zero_cycle.add_node("U");
    const int v = zero_cycle.add_node("V");
    zero_cycle.add_edge(u, v, {VecN{0, 0, 3}});
    zero_cycle.add_edge(v, u, {VecN{0, 0, -3}});  // cycle weight exactly zero
    EXPECT_FALSE(is_schedulable_nd(zero_cycle));

    MldgN pos_cycle(3);
    const int x = pos_cycle.add_node("X");
    const int y = pos_cycle.add_node("Y");
    pos_cycle.add_edge(x, y, {VecN{0, 0, 3}});
    pos_cycle.add_edge(y, x, {VecN{0, 0, -2}});  // cycle (0,0,1) > 0
    EXPECT_TRUE(is_schedulable_nd(pos_cycle));
}

TEST(LlofraNd, RetimesAllVectorsAboveZero) {
    const MldgN g = stencil_3d();
    const RetimingN r = llofra_nd(g);
    const MldgN gr = r.apply(g);
    for (const auto& e : gr.edges()) {
        for (const VecN& d : e.vectors) EXPECT_GE(d, VecN::zeros(3)) << d.str();
    }
}

TEST(LlofraNd, CycleWeightsAreInvariant) {
    const MldgN g = stencil_3d();
    const MldgN gr = llofra_nd(g).apply(g);
    // Cycle A -> B -> C -> A.
    const VecN before = g.edge(*g.find_edge(0, 1)).delta() + g.edge(*g.find_edge(1, 2)).delta() +
                        g.edge(*g.find_edge(2, 0)).delta();
    const VecN after = gr.edge(*gr.find_edge(0, 1)).delta() + gr.edge(*gr.find_edge(1, 2)).delta() +
                       gr.edge(*gr.find_edge(2, 0)).delta();
    EXPECT_EQ(before, after);
}

TEST(LlofraNd, ThrowsOnUnschedulable) {
    MldgN g(3);
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {VecN{0, 0, 1}});
    g.add_edge(b, a, {VecN{0, 0, -1}});
    EXPECT_THROW((void)llofra_nd(g), Error);
}

TEST(AcyclicOutermostNd, EveryVectorBecomesOutermostCarried) {
    MldgN g(3);
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    const int c = g.add_node("C");
    g.add_edge(a, b, {VecN{0, 0, -2}, VecN{0, 3, 1}});
    g.add_edge(b, c, {VecN{0, 2, -5}});
    g.add_edge(a, c, {VecN{2, 0, 0}});
    const RetimingN r = acyclic_outermost_fusion_nd(g);
    const MldgN gr = r.apply(g);
    for (const auto& e : gr.edges()) {
        for (const VecN& d : e.vectors) EXPECT_GE(d[0], 1) << d.str();
    }
    // Only the outermost component is retimed.
    for (int v = 0; v < 3; ++v) {
        EXPECT_EQ(r.of(v)[1], 0);
        EXPECT_EQ(r.of(v)[2], 0);
    }
}

TEST(ScheduleNd, StrictForTheStencilAndMatches2DFormula) {
    const MldgN g = stencil_3d();
    const RetimingN r = llofra_nd(g);
    const MldgN gr = r.apply(g);
    const VecN s = schedule_vector_nd(gr);
    EXPECT_EQ(s[g.dim() - 1], 1);
    for (const auto& e : gr.edges()) {
        for (const VecN& d : e.vectors) {
            if (!d.is_zero()) {
                EXPECT_GT(s.dot(d), 0) << s.str() << " . " << d.str();
            }
        }
    }
}

TEST(ScheduleNd, TwoDimensionalCaseAgreesWithLemma43) {
    // d = (1,-4) -> s = (5,1), the paper's own Section 4.4 arithmetic.
    MldgN g(2);
    const int a = g.add_node("A");
    g.add_edge(a, a, {VecN{1, -4}});
    EXPECT_EQ(schedule_vector_nd(g), VecN({5, 1}));
}

TEST(PlanFusionNd, AcyclicGetsOutermostCarried) {
    MldgN g(3);
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {VecN{0, 0, -3}});
    const NdFusionPlan plan = plan_fusion_nd(g);
    EXPECT_EQ(plan.level, NdParallelism::OutermostCarried);
    EXPECT_EQ(plan.schedule, VecN({1, 0, 0}));
}

TEST(PlanFusionNd, CyclicGetsHyperplane) {
    const NdFusionPlan plan = plan_fusion_nd(stencil_3d());
    EXPECT_EQ(plan.level, NdParallelism::Hyperplane);
    EXPECT_EQ(plan.schedule[2], 1);
}

class NdPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NdPropertyTest, RandomSchedulableGraphsAlwaysPlan) {
    Rng rng(GetParam());
    const int dim = static_cast<int>(rng.uniform(2, 4));
    MldgN g(dim);
    const int n = static_cast<int>(rng.uniform(3, 8));
    for (int v = 0; v < n; ++v) g.add_node("L" + std::to_string(v));
    // Forward edges: any prefix-nonnegative vectors; backward edges carried
    // by the outermost loop. Every cycle then weighs > 0.
    for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
            if (rng.flip(0.4)) {
                VecN d = VecN::zeros(dim);
                const int lead = static_cast<int>(rng.uniform(0, dim - 1));
                d[lead] = rng.uniform(lead == dim - 1 ? 1 : 0, 3);
                for (int k = lead + 1; k < dim; ++k) d[k] = rng.uniform(-3, 3);
                if (d.is_zero()) d[dim - 1] = 1;
                g.add_edge(u, v, {d});
            }
            if (rng.flip(0.2)) {
                VecN d = VecN::zeros(dim);
                d[0] = rng.uniform(1, 3);
                for (int k = 1; k < dim; ++k) d[k] = rng.uniform(-3, 3);
                g.add_edge(v, u, {d});
            }
        }
    }
    if (!is_schedulable_nd(g)) return;  // rare zero-cycles: skip
    const NdFusionPlan plan = plan_fusion_nd(g);  // internal checks assert
    for (const auto& e : plan.retimed.edges()) {
        for (const VecN& d : e.vectors) {
            if (!d.is_zero()) {
                EXPECT_GT(plan.schedule.dot(d), 0);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NdPropertyTest, ::testing::Range<std::uint64_t>(0, 30));

// ---- PlanPolicy::SmallestCode in n dimensions ----

TEST(PlanNdPolicy, SmallestCodeNeverLargerAndStillCertifies) {
    const std::pair<const char*, std::string_view> gallery[] = {
        {"volume3d", workloads::sources::kVolume3d},
        {"hyper4d", workloads::sources::kHyper4d},
    };
    for (const auto& [name, source] : gallery) {
        const auto p = front::parse_basic_program<VecN>(source);
        const MldgN g = analysis::build_mldg_nd(p);
        const NdFusionPlan fast = plan_fusion_nd(g);
        const NdFusionPlan small = plan_fusion_nd(g, nullptr, PlanPolicy::SmallestCode);
        EXPECT_LE(retiming_magnitude_nd(small.retiming),
                  retiming_magnitude_nd(fast.retiming))
            << name;
        EXPECT_EQ(small.level, fast.level) << name;
        const PlanCertificate cert = certify_plan(g, small);
        EXPECT_TRUE(cert.valid) << name << ": "
                                << (cert.violations.empty() ? ""
                                                            : cert.violations.front());
    }
}

TEST(PlanNdPolicy, SmallestCodeOnRandomSchedulableGraphs) {
    // Property sweep: wherever the default planner succeeds, the
    // smallest-code planner must also succeed (its internal strictness
    // post-condition asserts), never with more magnitude, and every
    // retimed vector must stay lexicographically nonnegative under the
    // hyperplane level.
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        Rng rng(0x9d00d5eeULL + seed);
        const int dim = static_cast<int>(rng.uniform(2, 4));
        const int n = static_cast<int>(rng.uniform(2, 6));
        MldgN g(dim);
        for (int v = 0; v < n; ++v) g.add_node("L" + std::to_string(v));
        for (int v = 0; v < n; ++v) {
            for (int u = v + 1; u < n; ++u) {
                if (rng.flip(0.5)) {
                    VecN d = VecN::zeros(dim);
                    d[0] = rng.uniform(0, 2);
                    for (int k = 1; k < dim; ++k) d[k] = rng.uniform(-2, 2);
                    g.add_edge(v, u, {d});
                }
                if (rng.flip(0.2)) {
                    VecN d = VecN::zeros(dim);
                    d[0] = rng.uniform(1, 3);
                    for (int k = 1; k < dim; ++k) d[k] = rng.uniform(-3, 3);
                    g.add_edge(u, v, {d});
                }
            }
        }
        if (!is_schedulable_nd(g)) continue;
        const NdFusionPlan fast = plan_fusion_nd(g);
        const NdFusionPlan small = plan_fusion_nd(g, nullptr, PlanPolicy::SmallestCode);
        EXPECT_LE(retiming_magnitude_nd(small.retiming),
                  retiming_magnitude_nd(fast.retiming))
            << "seed " << seed;
        if (small.level == NdParallelism::Hyperplane) {
            for (const auto& e : small.retimed.edges()) {
                for (const VecN& d : e.vectors) {
                    EXPECT_GE(d, VecN::zeros(dim)) << "seed " << seed;
                }
            }
        }
    }
}

}  // namespace
}  // namespace lf
