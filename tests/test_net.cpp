// The wire layer (net/frame.hpp, net/client.hpp, net/server.hpp):
//
//   * frame codec -- round trips, limit enforcement, typed decode errors,
//     incremental (byte-at-a-time) delivery, and fuzz over random and
//     truncated byte streams: arbitrary garbage must yield a typed
//     WireError or NeedMore, never a crash or a bogus frame;
//   * loopback server -- verified responses, wire-to-worker deadline
//     propagation (echoed back; an already-expired deadline deterministically
//     quarantines), per-tenant quota sheds with retry-after hints,
//     queue-depth sheds, typed errors for unparseable payloads and garbage
//     bytes, idle and slow-read (slow-loris) connection timeouts;
//   * fault points -- net.accept / net.read / net.write / net.torn_response
//     each produce their documented failure shape and a stats() count, and
//     the client classifies the damage (Closed/Torn), never misparses it.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <random>
#include <string>
#include <thread>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "support/faultpoint.hpp"
#include "workloads/sources.hpp"

namespace lf::net {
namespace {

class NetTest : public ::testing::Test {
  protected:
    void SetUp() override { faultpoint::reset(); }
    void TearDown() override { faultpoint::reset(); }
};

Frame sample_frame() {
    Frame f;
    f.type = FrameType::Request;
    f.aux = static_cast<std::uint16_t>(PayloadKind::Dsl);
    f.request_id = 0x0123456789abcdefull;
    f.deadline_ms = 1500;
    f.tenant = "tenant-a";
    f.payload = "loop body bytes";
    return f;
}

/// Feeds `bytes` and polls; returns the decoder's verdict for one frame.
FrameDecoder::Status decode_once(const std::string& bytes, Frame& out, FrameDecoder& dec) {
    dec.feed(bytes);
    return dec.poll(out);
}

// ---- Codec ----

TEST_F(NetTest, FrameRoundTripsAllFields) {
    const Frame in = sample_frame();
    FrameDecoder dec;
    Frame out;
    ASSERT_EQ(decode_once(encode_frame(in), out, dec), FrameDecoder::Status::Ready);
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.aux, in.aux);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.deadline_ms, in.deadline_ms);
    EXPECT_EQ(out.tenant, in.tenant);
    EXPECT_EQ(out.payload, in.payload);
    EXPECT_EQ(dec.buffered(), 0u);
}

TEST_F(NetTest, NegativeDeadlineSurvivesTheWire) {
    Frame in = sample_frame();
    in.deadline_ms = -1;
    FrameDecoder dec;
    Frame out;
    ASSERT_EQ(decode_once(encode_frame(in), out, dec), FrameDecoder::Status::Ready);
    EXPECT_EQ(out.deadline_ms, -1);
}

TEST_F(NetTest, EncoderClampsOversizedFields) {
    Frame f = sample_frame();
    f.tenant.assign(kMaxTenantLen + 100, 't');
    f.payload.assign(kMaxPayloadLen + 5, 'p');
    const std::string bytes = encode_frame(f);
    FrameDecoder dec;
    Frame out;
    ASSERT_EQ(decode_once(bytes, out, dec), FrameDecoder::Status::Ready)
        << "the encoder must never emit a frame the decoder rejects";
    EXPECT_EQ(out.tenant.size(), kMaxTenantLen);
    EXPECT_EQ(out.payload.size(), kMaxPayloadLen);
}

TEST_F(NetTest, ByteAtATimeDeliveryDecodes) {
    const std::string bytes = encode_frame(sample_frame());
    FrameDecoder dec;
    Frame out;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        dec.feed(std::string_view(&bytes[i], 1));
        ASSERT_EQ(dec.poll(out), FrameDecoder::Status::NeedMore) << "at byte " << i;
    }
    dec.feed(std::string_view(&bytes[bytes.size() - 1], 1));
    ASSERT_EQ(dec.poll(out), FrameDecoder::Status::Ready);
    EXPECT_EQ(out.payload, sample_frame().payload);
}

TEST_F(NetTest, TwoFramesInOneFeed) {
    Frame a = sample_frame();
    Frame b = sample_frame();
    b.request_id = 7;
    b.payload = "second";
    FrameDecoder dec;
    dec.feed(encode_frame(a) + encode_frame(b));
    Frame out;
    ASSERT_EQ(dec.poll(out), FrameDecoder::Status::Ready);
    EXPECT_EQ(out.request_id, a.request_id);
    ASSERT_EQ(dec.poll(out), FrameDecoder::Status::Ready);
    EXPECT_EQ(out.payload, "second");
    EXPECT_EQ(dec.poll(out), FrameDecoder::Status::NeedMore);
}

TEST_F(NetTest, TypedErrorsForEachHeaderDefect) {
    struct Case {
        const char* name;
        std::size_t offset;
        unsigned char value;
        WireError expected;
    };
    // Start from a valid frame and corrupt one header field at a time.
    const Case cases[] = {
        {"magic", 0, 'X', WireError::BadMagic},
        {"version", 4, 0xee, WireError::BadVersion},
        {"type", 6, 0x77, WireError::BadType},
        {"tenant_len", 27, 0xff, WireError::OversizedTenant},   // 0xff00 > 256
        {"payload_len", 31, 0xff, WireError::OversizedPayload}, // top byte: > 1 MiB
    };
    for (const Case& c : cases) {
        std::string bytes = encode_frame(sample_frame());
        bytes[c.offset] = static_cast<char>(c.value);
        FrameDecoder dec;
        Frame out;
        ASSERT_EQ(decode_once(bytes, out, dec), FrameDecoder::Status::Error) << c.name;
        EXPECT_EQ(dec.error(), c.expected) << c.name;
        EXPECT_FALSE(dec.detail().empty()) << c.name;
        // Sticky: the stream is dead; more bytes change nothing.
        dec.feed(encode_frame(sample_frame()));
        EXPECT_EQ(dec.poll(out), FrameDecoder::Status::Error) << c.name;
    }
}

TEST_F(NetTest, EveryPrefixOfAValidFrameIsNeedMoreNeverError) {
    const std::string bytes = encode_frame(sample_frame());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        FrameDecoder dec;
        dec.feed(std::string_view(bytes.data(), len));
        Frame out;
        EXPECT_EQ(dec.poll(out), FrameDecoder::Status::NeedMore) << "prefix length " << len;
        EXPECT_TRUE(len < kHeaderSize || dec.mid_frame()) << "prefix length " << len;
    }
}

TEST_F(NetTest, FuzzRandomBytesNeverCrashAndNeverYieldAFrame) {
    std::mt19937 rng(20260808);
    std::uniform_int_distribution<int> byte(0, 255);
    for (int round = 0; round < 200; ++round) {
        std::string junk(64 + static_cast<std::size_t>(round), '\0');
        for (char& ch : junk) ch = static_cast<char>(byte(rng));
        FrameDecoder dec;
        dec.feed(junk);
        Frame out;
        // Random 4-byte magics essentially never spell LFNP; whatever the
        // verdict, it must be reached without crashing and must be typed.
        const FrameDecoder::Status st = dec.poll(out);
        if (st == FrameDecoder::Status::Error) {
            EXPECT_NE(dec.error(), WireError::None);
        }
    }
}

TEST_F(NetTest, FuzzBitFlippedValidFramesNeverCrash) {
    std::mt19937 rng(987654);
    const std::string valid = encode_frame(sample_frame());
    std::uniform_int_distribution<std::size_t> pos(0, valid.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    for (int round = 0; round < 500; ++round) {
        std::string bytes = valid;
        bytes[pos(rng)] ^= static_cast<char>(1 << bit(rng));
        FrameDecoder dec;
        dec.feed(bytes);
        Frame out;
        // A flipped length field may leave the decoder waiting for bytes
        // that never come (NeedMore) -- the server's read timeout owns that
        // case. Everything else must be Ready or a typed error.
        const FrameDecoder::Status st = dec.poll(out);
        if (st == FrameDecoder::Status::Error) {
            EXPECT_NE(dec.error(), WireError::None);
            EXPECT_FALSE(dec.detail().empty());
        }
    }
}

// ---- Loopback server ----

/// Starts a server on an ephemeral loopback port with test-friendly knobs.
struct TestServer {
    explicit TestServer(ServerConfig config = {}) : server((prepare(config), config)) {
        std::string error;
        started = server.start(&error);
        EXPECT_TRUE(started) << error;
    }
    static void prepare(ServerConfig& config) {
        config.host = "127.0.0.1";
        config.port = 0;
        if (config.service.workers == 0) config.service.workers = 2;
    }
    Server server;
    bool started = false;
};

Frame dsl_request(std::uint64_t id, std::string_view source, std::int64_t deadline_ms = -1,
                  const std::string& tenant = {}) {
    Frame f;
    f.type = FrameType::Request;
    f.aux = static_cast<std::uint16_t>(PayloadKind::Dsl);
    f.request_id = id;
    f.deadline_ms = deadline_ms;
    f.tenant = tenant;
    f.payload = std::string(source);
    return f;
}

int raw_connect(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

TEST_F(NetTest, LoopbackRequestEndsVerifiedWithEchoedIds) {
    TestServer ts;
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    ASSERT_TRUE(client.send(dsl_request(42, workloads::sources::kFig2, -1, "acme")));
    const auto r = client.recv(30000);
    ASSERT_EQ(r.status, BlockingClient::RecvStatus::Ok) << client.last_error();
    EXPECT_EQ(r.frame.type, FrameType::Response);
    EXPECT_EQ(r.frame.aux, 1u) << "verified verdict";
    EXPECT_EQ(r.frame.request_id, 42u);
    EXPECT_EQ(r.frame.tenant, "acme");
    EXPECT_NE(r.frame.payload.find("\"status\": \"verified\""), std::string::npos)
        << r.frame.payload;
    EXPECT_NE(r.frame.payload.find("\"tenant\": \"acme\""), std::string::npos);
    // The client can observe the response bytes before the batcher thread
    // bumps its counter; give the stats a moment to settle.
    for (int spin = 0; spin < 100 && ts.server.stats().responses_sent == 0; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const ServerStats s = ts.server.stats();
    EXPECT_EQ(s.requests, 1u);
    EXPECT_EQ(s.responses_sent, 1u);
    EXPECT_EQ(s.jobs_verified, 1u);
}

TEST_F(NetTest, WireDeadlinePropagatesToTheWorker) {
    TestServer ts;
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    // A generous deadline verifies and is echoed back both in the frame
    // field and the payload JSON.
    ASSERT_TRUE(client.send(dsl_request(1, workloads::sources::kFig2, 60000)));
    auto r = client.recv(30000);
    ASSERT_EQ(r.status, BlockingClient::RecvStatus::Ok);
    EXPECT_EQ(r.frame.aux, 1u);
    EXPECT_EQ(r.frame.deadline_ms, 60000);
    EXPECT_NE(r.frame.payload.find("\"deadline_ms\": 60000"), std::string::npos)
        << r.frame.payload;
    // An already-expired deadline (0 ms) deterministically exhausts the
    // planner's wall guard, so the ladder's fused rungs all fail and the
    // job degrades to the always-correct loop-distribution fallback -- the
    // proof the wire value reaches planner-level enforcement, not just the
    // report. kFig8 fuses via Algorithm 3 when unconstrained (and it must
    // be a program not sent above: a plan-cache hit skips planning and the
    // deadline would never bite -- by design, cached plans cost nothing).
    ASSERT_TRUE(client.send(dsl_request(2, workloads::sources::kFig8, 0)));
    r = client.recv(30000);
    ASSERT_EQ(r.status, BlockingClient::RecvStatus::Ok);
    EXPECT_EQ(r.frame.type, FrameType::Response);
    EXPECT_EQ(r.frame.aux, 1u) << r.frame.payload;
    EXPECT_NE(r.frame.payload.find("loop distribution (unfused fallback)"), std::string::npos)
        << "expired deadline must force the unfused degrade path: " << r.frame.payload;
}

TEST_F(NetTest, TenantQuotaShedsWithRetryAfterHint) {
    ServerConfig config;
    config.quota.refill_per_sec = 0.001;  // one token per ~17 minutes
    config.quota.burst = 1;
    TestServer ts(config);
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    ASSERT_TRUE(client.send(dsl_request(1, workloads::sources::kFig2, -1, "greedy")));
    auto r = client.recv(30000);
    ASSERT_EQ(r.status, BlockingClient::RecvStatus::Ok);
    ASSERT_EQ(r.frame.type, FrameType::Response);
    // Token bucket empty: the second request sheds, typed, with a hint.
    ASSERT_TRUE(client.send(dsl_request(2, workloads::sources::kFig2, -1, "greedy")));
    r = client.recv(30000);
    ASSERT_EQ(r.status, BlockingClient::RecvStatus::Ok);
    EXPECT_EQ(r.frame.type, FrameType::Shed);
    EXPECT_EQ(r.frame.aux, static_cast<std::uint16_t>(ShedReason::QuotaExceeded));
    EXPECT_GT(r.frame.deadline_ms, 0) << "retry-after hint";
    // Another tenant's bucket is untouched.
    ASSERT_TRUE(client.send(dsl_request(3, workloads::sources::kFig2, -1, "patient")));
    r = client.recv(30000);
    ASSERT_EQ(r.status, BlockingClient::RecvStatus::Ok);
    EXPECT_EQ(r.frame.type, FrameType::Response);
    EXPECT_EQ(ts.server.stats().shed_quota, 1u);
}

TEST_F(NetTest, QueueDepthShedsWhenInflightCapReached) {
    ServerConfig config;
    config.max_inflight = 1;
    config.batch_wait_ms = 400;  // hold the first job in the batcher window
    TestServer ts(config);
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    ASSERT_TRUE(client.send(dsl_request(1, workloads::sources::kFig2)));
    // While job 1 is admitted-but-unanswered, job 2 must shed QueueFull.
    ASSERT_TRUE(client.send(dsl_request(2, workloads::sources::kFig8)));
    auto r = client.recv(30000);
    ASSERT_EQ(r.status, BlockingClient::RecvStatus::Ok);
    ASSERT_EQ(r.frame.type, FrameType::Shed) << "payload: " << r.frame.payload;
    EXPECT_EQ(r.frame.aux, static_cast<std::uint16_t>(ShedReason::QueueFull));
    EXPECT_EQ(r.frame.request_id, 2u);
    EXPECT_GE(r.frame.deadline_ms, 1);
    // Job 1 still completes.
    r = client.recv(30000);
    ASSERT_EQ(r.status, BlockingClient::RecvStatus::Ok);
    EXPECT_EQ(r.frame.type, FrameType::Response);
    EXPECT_EQ(r.frame.request_id, 1u);
    EXPECT_EQ(ts.server.stats().shed_queue, 1u);
}

TEST_F(NetTest, UnparseablePayloadEarnsTypedErrorNotACrash) {
    TestServer ts;
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    ASSERT_TRUE(client.send(dsl_request(5, "for (i in chaos) { not a program }")));
    const auto r = client.recv(30000);
    ASSERT_EQ(r.status, BlockingClient::RecvStatus::Ok);
    EXPECT_EQ(r.frame.type, FrameType::Error);
    EXPECT_EQ(r.frame.aux, static_cast<std::uint16_t>(WireError::BadPayload));
    EXPECT_EQ(r.frame.request_id, 5u);
    EXPECT_FALSE(r.frame.payload.empty()) << "the reason travels back";
    EXPECT_EQ(ts.server.stats().bad_payloads, 1u);
}

TEST_F(NetTest, GarbageBytesEarnTypedWireErrorAndAClosedConnection) {
    TestServer ts;
    const int fd = raw_connect(ts.server.port());
    ASSERT_GE(fd, 0);
    const std::string junk = "GET / HTTP/1.1\r\nHost: not-a-fusion-client\r\n\r\n";
    ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0), static_cast<ssize_t>(junk.size()));
    // The server answers with a typed Error frame, then closes.
    FrameDecoder dec;
    Frame out;
    char buf[512];
    FrameDecoder::Status st = FrameDecoder::Status::NeedMore;
    for (int spin = 0; spin < 100 && st == FrameDecoder::Status::NeedMore; ++spin) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        dec.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        st = dec.poll(out);
    }
    ::close(fd);
    ASSERT_EQ(st, FrameDecoder::Status::Ready);
    EXPECT_EQ(out.type, FrameType::Error);
    EXPECT_EQ(out.aux, static_cast<std::uint16_t>(WireError::BadMagic));
    EXPECT_EQ(ts.server.stats().wire_errors, 1u);
}

TEST_F(NetTest, IdleConnectionsAreReaped) {
    ServerConfig config;
    config.idle_timeout_ms = 120;
    TestServer ts(config);
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    const auto r = client.recv(3000);  // say nothing; wait for the server
    EXPECT_EQ(r.status, BlockingClient::RecvStatus::Closed);
    EXPECT_EQ(ts.server.stats().idle_timeouts, 1u);
}

TEST_F(NetTest, SlowLorisMidFrameTricklersAreReaped) {
    ServerConfig config;
    config.read_timeout_ms = 120;
    config.idle_timeout_ms = 60000;  // only the mid-frame timeout may fire
    TestServer ts(config);
    const int fd = raw_connect(ts.server.port());
    ASSERT_GE(fd, 0);
    // A valid header promising a body that never arrives.
    Frame f = dsl_request(1, workloads::sources::kFig2);
    const std::string bytes = encode_frame(f);
    ASSERT_EQ(::send(fd, bytes.data(), kHeaderSize + 3, 0),
              static_cast<ssize_t>(kHeaderSize + 3));
    char buf[64];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // blocks until the server closes
    ::close(fd);
    EXPECT_EQ(n, 0) << "server must close the trickling connection";
    EXPECT_EQ(ts.server.stats().read_timeouts, 1u);
    EXPECT_EQ(ts.server.stats().idle_timeouts, 0u);
}

// ---- Fault points ----

TEST_F(NetTest, AcceptFaultDropsTheConnectionImmediately) {
    TestServer ts;
    faultpoint::arm("net.accept");
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    // The TCP handshake succeeds (the kernel's doing); the server-side drop
    // surfaces on first use.
    (void)client.send(dsl_request(1, workloads::sources::kFig2));
    const auto r = client.recv(5000);
    EXPECT_NE(r.status, BlockingClient::RecvStatus::Ok);
    for (int spin = 0; spin < 100 && ts.server.stats().accept_faults == 0; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(ts.server.stats().accept_faults, 1u);
    EXPECT_GE(faultpoint::hits("net.accept"), 1u);
}

TEST_F(NetTest, ReadFaultDropsTheConnection) {
    TestServer ts;
    faultpoint::arm("net.read");
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    ASSERT_TRUE(client.send(dsl_request(1, workloads::sources::kFig2)));
    const auto r = client.recv(5000);
    EXPECT_NE(r.status, BlockingClient::RecvStatus::Ok);
    EXPECT_GE(ts.server.stats().read_faults, 1u);
}

TEST_F(NetTest, WriteFaultLosesTheResponseWhole) {
    TestServer ts;
    faultpoint::arm("net.write");
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    Frame ping;
    ping.type = FrameType::Ping;
    ping.request_id = 9;
    ASSERT_TRUE(client.send(ping));
    const auto r = client.recv(10000);
    // Nothing was written before the close: a clean Closed, never a torn
    // half-frame and never a bogus Ok.
    EXPECT_EQ(r.status, BlockingClient::RecvStatus::Closed) << to_string(r.status);
    EXPECT_GE(ts.server.stats().write_faults, 1u);
}

TEST_F(NetTest, TornResponseIsClassifiedTornByTheClient) {
    TestServer ts;
    faultpoint::arm("net.torn_response");
    BlockingClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", ts.server.port()));
    Frame ping;
    ping.type = FrameType::Ping;
    ping.request_id = 9;
    ASSERT_TRUE(client.send(ping));
    const auto r = client.recv(10000);
    EXPECT_EQ(r.status, BlockingClient::RecvStatus::Torn) << to_string(r.status);
    EXPECT_GE(ts.server.stats().torn_responses, 1u);
}

TEST_F(NetTest, ServerSurvivesAStormOfMixedTraffic) {
    // A mini in-process storm: concurrent well-formed requests, garbage
    // streams, and pings; the server must answer or close every one and
    // stop cleanly. (The full per-fault storm drill is tools/storm_drill.sh.)
    ServerConfig config;
    config.service.workers = 2;
    TestServer ts(config);
    std::vector<std::thread> pool;
    std::atomic<int> verified{0};
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&, t] {
            BlockingClient client;
            if (!client.connect("127.0.0.1", ts.server.port())) return;
            for (int i = 0; i < 5; ++i) {
                if (t == 3) {  // one thread speaks garbage
                    const int fd = raw_connect(ts.server.port());
                    if (fd >= 0) {
                        (void)::send(fd, "garbage\n", 8, 0);
                        ::close(fd);
                    }
                    continue;
                }
                const auto src = (i % 2) == 0 ? workloads::sources::kFig2
                                              : workloads::sources::kJacobiPair;
                if (!client.send(dsl_request(static_cast<std::uint64_t>(t * 100 + i), src))) {
                    return;
                }
                const auto r = client.recv(30000);
                if (r.status == BlockingClient::RecvStatus::Ok && r.frame.aux == 1) ++verified;
            }
        });
    }
    for (auto& th : pool) th.join();
    EXPECT_EQ(verified.load(), 15);
    ts.server.stop();
    const ServerStats s = ts.server.stats();
    EXPECT_EQ(s.jobs_verified, 15u);
    EXPECT_EQ(s.responses_sent, 15u);
}

}  // namespace
}  // namespace lf::net
