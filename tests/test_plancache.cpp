// The content-addressed plan cache (svc/plancache.hpp) and the solver
// workspace hot path (graph/solver_workspace.hpp), from both sides:
//
//   * unit level -- content keys, hit/miss/eviction determinism, and that a
//     cached plan is byte-identical to planning the same graph cold;
//   * service level -- structurally identical jobs hit, fault-armed runs
//     bypass and never poison the cache, and the run report carries the
//     per-job cache outcome;
//   * workspace level -- warm-started ladder runs produce byte-identical
//     plans AND rung traces, with zero steady-state solver allocations.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fusion/driver.hpp"
#include "graph/solver_workspace.hpp"
#include "ldg/serialization.hpp"
#include "support/faultpoint.hpp"
#include "svc/manifest.hpp"
#include "svc/plancache.hpp"
#include "svc/planstore.hpp"
#include "svc/report.hpp"
#include "svc/service.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"

namespace lf::svc {
namespace {

class PlanCacheTest : public ::testing::Test {
  protected:
    void SetUp() override { faultpoint::reset(); }
    void TearDown() override { faultpoint::reset(); }
};

Mldg two_loop_graph(std::int64_t y) {
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_edge(a, b, {Vec2{0, y}});
    return g;
}

/// Everything that makes two plans "the same plan", byte for byte. The
/// per-rung stage trace is deliberately excluded: a cached plan carries no
/// trace (it belongs to the job that planned it).
std::string plan_fingerprint(const FusionPlan& plan) {
    std::string fp = to_string(plan.level) + "|" + to_string(plan.algorithm) + "|" +
                     plan.schedule.str() + "|" + plan.hyperplane.str() + "|";
    for (int v = 0; v < plan.retiming.num_nodes(); ++v) fp += plan.retiming.of(v).str() + ",";
    fp += "|";
    for (int v : plan.body_order) fp += std::to_string(v) + ",";
    fp += "|" + serialize_mldg(plan.retimed, "fp");
    return fp;
}

// ---- Content keys ----

TEST_F(PlanCacheTest, KeyDependsOnContentNotIdentity) {
    const Mldg a = two_loop_graph(1);
    const Mldg b = two_loop_graph(1);   // structurally identical, distinct object
    const Mldg c = two_loop_graph(-1);  // different dependence vector
    const std::uint64_t ka = PlanCache::key_of(a, PlanOptions{}, true);
    EXPECT_EQ(ka, PlanCache::key_of(b, PlanOptions{}, true));
    EXPECT_NE(ka, PlanCache::key_of(c, PlanOptions{}, true));
}

TEST_F(PlanCacheTest, KeyFoldsInPlanningOptions) {
    const Mldg g = two_loop_graph(1);
    const std::uint64_t base = PlanCache::key_of(g, PlanOptions{}, true);
    PlanOptions compact;
    compact.compact_prologue = true;
    EXPECT_NE(base, PlanCache::key_of(g, compact, true));
    EXPECT_NE(base, PlanCache::key_of(g, PlanOptions{}, false));
}

TEST_F(PlanCacheTest, DimensionNeverConflatesKeysOrEntries) {
    // Structurally similar two-node chains at three dimensionalities: the
    // N-D key folds the dimension before any content, and the N-D keyspace
    // carries its own tag, so none of the three keys may collide.
    const Mldg g2 = two_loop_graph(1);
    MldgN n2(2);
    n2.add_node("A");
    n2.add_node("B");
    n2.add_edge(0, 1, {VecN{0, 1}});
    MldgN n3(3);
    n3.add_node("A");
    n3.add_node("B");
    n3.add_edge(0, 1, {VecN{0, 0, 1}});

    const std::uint64_t k2 = PlanCache::key_of(g2, PlanOptions{}, true);
    const std::uint64_t kn2 = PlanCache::key_of_nd(n2, PlanOptions{}, true);
    const std::uint64_t kn3 = PlanCache::key_of_nd(n3, PlanOptions{}, true);
    EXPECT_NE(kn2, kn3);
    EXPECT_NE(k2, kn2);
    EXPECT_NE(k2, kn3);

    // Even a forced key collision cannot surface a 2-D plan as an N-D one:
    // an entry holds either kind, and the mismatched lookup misses.
    PlanCache cache(8);
    const auto plan2 = try_plan_fusion(g2);
    ASSERT_TRUE(plan2.ok());
    cache.insert(42, *plan2);
    EXPECT_FALSE(cache.lookup_nd(42).has_value());
    EXPECT_TRUE(cache.lookup(42).has_value());

    const NdFusionPlan plan3 = plan_fusion_nd(n3);
    cache.insert_nd(kn3, plan3);
    const auto hit = cache.lookup_nd(kn3);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->retiming.num_nodes(), 2);
    EXPECT_EQ(hit->schedule.dim(), 3);
}

// ---- Hit fidelity ----

TEST_F(PlanCacheTest, CachedPlanIsByteIdenticalToColdPlan) {
    PlanCache cache(8);
    for (const auto& w : workloads::paper_workloads()) {
        const auto cold = try_plan_fusion(w.graph);
        ASSERT_TRUE(cold.ok()) << w.id;
        const std::uint64_t key = PlanCache::key_of(w.graph, PlanOptions{}, true);
        cache.insert(key, *cold);
        const auto hit = cache.lookup(key);
        ASSERT_TRUE(hit.has_value()) << w.id;
        EXPECT_EQ(plan_fingerprint(*hit), plan_fingerprint(*cold)) << w.id;
        EXPECT_TRUE(hit->stages.empty()) << w.id << ": cached plan must not carry a trace";
    }
}

// ---- Eviction determinism ----

TEST_F(PlanCacheTest, LruEvictionOrderIsDeterministic) {
    PlanCache cache(2);
    const Mldg g = two_loop_graph(1);
    const auto plan = try_plan_fusion(g);
    ASSERT_TRUE(plan.ok());

    cache.insert(1, *plan);
    cache.insert(2, *plan);
    EXPECT_EQ(cache.lru_keys(), (std::vector<std::uint64_t>{1, 2}));

    // A lookup refreshes recency: key 1 becomes most recent ...
    ASSERT_TRUE(cache.lookup(1).has_value());
    EXPECT_EQ(cache.lru_keys(), (std::vector<std::uint64_t>{2, 1}));

    // ... so inserting a third entry evicts key 2, not key 1.
    cache.insert(3, *plan);
    EXPECT_EQ(cache.lru_keys(), (std::vector<std::uint64_t>{1, 3}));
    EXPECT_FALSE(cache.lookup(2).has_value());
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(PlanCacheTest, ZeroCapacityDisablesEverything) {
    PlanCache cache(0);
    const auto plan = try_plan_fusion(two_loop_graph(1));
    ASSERT_TRUE(plan.ok());
    cache.insert(1, *plan);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup(1).has_value());
}

TEST_F(PlanCacheTest, InvalidateDropsTheEntry) {
    PlanCache cache(4);
    const auto plan = try_plan_fusion(two_loop_graph(1));
    ASSERT_TRUE(plan.ok());
    cache.insert(7, *plan);
    cache.invalidate(7);
    EXPECT_FALSE(cache.lookup(7).has_value());
    EXPECT_EQ(cache.stats().invalidated, 1u);
}

// ---- Service integration ----

std::vector<JobSpec> twin_jobs() {
    // Two jobs, distinct ids, structurally identical graphs: the second must
    // be served from the cache.
    std::vector<JobSpec> jobs;
    for (const char* id : {"twin-a", "twin-b"}) {
        JobSpec j;
        j.id = id;
        j.klass = "twin";
        j.graph = workloads::fig2_graph();
        jobs.push_back(std::move(j));
    }
    return jobs;
}

TEST_F(PlanCacheTest, StructurallyIdenticalJobsHitTheCache) {
    ServiceConfig config;
    config.workers = 1;  // deterministic processing order
    FusionService service(config);
    const RunReport report = service.run(twin_jobs());

    ASSERT_EQ(report.jobs.size(), 2u);
    const auto& first = report.jobs[0];
    const auto& second = report.jobs[1];
    EXPECT_EQ(first.cache, CacheOutcome::Miss);
    EXPECT_EQ(second.cache, CacheOutcome::Hit);
    EXPECT_EQ(first.status, JobStatus::Verified);
    EXPECT_EQ(second.status, JobStatus::Verified);
    // The hit serves the very same plan: same rung, same level, certified.
    EXPECT_EQ(second.algorithm, first.algorithm);
    EXPECT_EQ(second.level, first.level);
    EXPECT_TRUE(second.certified);
    EXPECT_EQ(second.replay, ReplayOutcome::Skipped);

    EXPECT_EQ(report.plancache.hits, 1u);
    EXPECT_EQ(report.plancache.insertions, 1u);
    EXPECT_EQ(report.plancache_size, 1u);

    const RunCounts counts = report.counts();
    EXPECT_EQ(counts.cache_hits, 1);
    EXPECT_EQ(counts.cache_misses, 1);

    // The per-job outcome is visible in the JSON report.
    const std::string json = report_to_json(report, false);
    EXPECT_NE(json.find("\"cache\": \"hit\""), std::string::npos);
    EXPECT_NE(json.find("\"cache\": \"miss\""), std::string::npos);
}

TEST_F(PlanCacheTest, FaultArmedRunsBypassAndNeverPoisonTheCache) {
    ServiceConfig config;
    config.workers = 1;
    FusionService service(config);

    // Run 1: a fault is armed -- every job must bypass, nothing may be
    // inserted, whatever the fault does to the jobs themselves.
    faultpoint::arm("solver.spfa");
    const RunReport faulted = service.run(twin_jobs());
    for (const auto& job : faulted.jobs) {
        EXPECT_EQ(job.cache, CacheOutcome::Bypass) << job.id;
    }
    EXPECT_EQ(faulted.plancache_size, 0u);
    EXPECT_EQ(faulted.plancache.insertions, 0u);
    EXPECT_EQ(faulted.plancache.hits, 0u);
    faultpoint::reset();

    // Run 2, same service (the cache persists across runs): the cache is
    // still empty, so the first twin is a miss, not a poisoned hit.
    const RunReport clean = service.run(twin_jobs());
    ASSERT_EQ(clean.jobs.size(), 2u);
    EXPECT_EQ(clean.jobs[0].cache, CacheOutcome::Miss);
    EXPECT_EQ(clean.jobs[1].cache, CacheOutcome::Hit);
    EXPECT_EQ(clean.jobs[0].status, JobStatus::Verified);
}

TEST_F(PlanCacheTest, PlancacheFaultPointForcesBypass) {
    ServiceConfig config;
    config.workers = 1;
    FusionService service(config);
    faultpoint::arm("svc.plancache");
    const RunReport report = service.run(twin_jobs());
    for (const auto& job : report.jobs) {
        EXPECT_EQ(job.cache, CacheOutcome::Bypass) << job.id;
        EXPECT_EQ(job.status, JobStatus::Verified) << job.id;  // planning unaffected
    }
    EXPECT_GE(faultpoint::hits("svc.plancache"), 1);
}

TEST_F(PlanCacheTest, DisabledCacheRecordsBypass) {
    ServiceConfig config;
    config.workers = 1;
    config.plan_cache_capacity = 0;
    FusionService service(config);
    const RunReport report = service.run(twin_jobs());
    for (const auto& job : report.jobs) {
        EXPECT_EQ(job.cache, CacheOutcome::Bypass) << job.id;
    }
}

// ---- Persistent tier ----

/// A fresh, self-cleaning store directory per test.
struct TempStoreDir {
    std::string path;
    explicit TempStoreDir(const std::string& tag)
        : path(::testing::TempDir() + "lf_plancache_" + tag + "_" + std::to_string(::getpid())) {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempStoreDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

std::string slurp_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_raw(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

FusionPlan fig2_plan() {
    auto plan = try_plan_fusion(workloads::fig2_graph());
    EXPECT_TRUE(plan.ok());
    return *plan;
}

TEST_F(PlanCacheTest, PersistedPlanSurvivesAProcessRestartByteIdentical) {
    TempStoreDir dir("roundtrip");
    const FusionPlan plan = fig2_plan();
    const std::uint64_t key = PlanCache::key_of(workloads::fig2_graph(), PlanOptions{}, true);
    std::string file_image;
    {
        PlanCache cache(8, dir.path);
        cache.insert(key, plan);
        EXPECT_EQ(cache.stats().disk_writes, 1u);
        ASSERT_TRUE(std::filesystem::exists(cache.plan_path(key)));
        file_image = slurp_file(cache.plan_path(key));
        EXPECT_EQ(file_image, planstore::encode_file(key, plan))
            << "the on-disk image is the deterministic planstore encoding";
    }
    // A brand-new cache (the restarted process) serves the plan from disk:
    // a memory miss, a disk hit, and a byte-identical plan.
    PlanCache fresh(8, dir.path);
    const auto hit = fresh.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(plan_fingerprint(*hit), plan_fingerprint(plan));
    EXPECT_EQ(fresh.stats().hits, 1u);
    EXPECT_EQ(fresh.stats().disk_hits, 1u);
    EXPECT_EQ(fresh.stats().disk_misses, 0u);
    EXPECT_EQ(slurp_file(fresh.plan_path(key)), file_image) << "the load must not rewrite";
    // Promoted into memory: the second lookup is a pure memory hit.
    ASSERT_TRUE(fresh.lookup(key).has_value());
    EXPECT_EQ(fresh.stats().disk_hits, 1u);
    EXPECT_EQ(fresh.stats().hits, 2u);
}

TEST_F(PlanCacheTest, EvictionLeavesTheDiskFileToReloadLater) {
    TempStoreDir dir("evict");
    const FusionPlan plan = fig2_plan();
    PlanCache cache(1, dir.path);
    cache.insert(1, plan);
    cache.insert(2, plan);  // evicts key 1 from memory
    EXPECT_EQ(cache.stats().evictions, 1u);
    ASSERT_TRUE(std::filesystem::exists(cache.plan_path(1)))
        << "eviction is a memory event; the tier keeps the plan";
    const auto hit = cache.lookup(1);  // comes back from disk
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    EXPECT_EQ(plan_fingerprint(*hit), plan_fingerprint(plan));
}

TEST_F(PlanCacheTest, TruncatedEntryIsQuarantinedThenRebuilt) {
    TempStoreDir dir("truncated");
    const FusionPlan plan = fig2_plan();
    const std::uint64_t key = 77;
    std::string path;
    {
        PlanCache cache(8, dir.path);
        cache.insert(key, plan);
        path = cache.plan_path(key);
    }
    // A kill mid-rewrite cannot produce this (writes are atomic), but a bad
    // disk or a meddling operator can.
    write_raw(path, slurp_file(path).substr(0, 40));

    PlanCache fresh(8, dir.path);
    EXPECT_FALSE(fresh.lookup(key).has_value());
    EXPECT_EQ(fresh.stats().disk_quarantined, 1u);
    EXPECT_EQ(fresh.stats().disk_misses, 1u);
    EXPECT_FALSE(std::filesystem::exists(path)) << "corrupt file must not stay under its name";
    EXPECT_TRUE(std::filesystem::exists(path + ".quarantined"))
        << "quarantined, not destroyed: the evidence survives for inspection";
    // The job replans cold and re-inserts: the slot heals.
    fresh.insert(key, plan);
    EXPECT_EQ(fresh.stats().disk_writes, 1u);
    ASSERT_TRUE(std::filesystem::exists(path));
    PlanCache reader(8, dir.path);
    EXPECT_TRUE(reader.lookup(key).has_value());
}

TEST_F(PlanCacheTest, BitFlippedEntryFailsTheChecksumAndIsQuarantined) {
    TempStoreDir dir("bitflip");
    const FusionPlan plan = fig2_plan();
    const std::uint64_t key = 78;
    std::string path;
    {
        PlanCache cache(8, dir.path);
        cache.insert(key, plan);
        path = cache.plan_path(key);
    }
    std::string bytes = slurp_file(path);
    bytes[bytes.size() / 2] ^= 0x01;
    write_raw(path, bytes);

    PlanCache fresh(8, dir.path);
    EXPECT_FALSE(fresh.lookup(key).has_value());
    EXPECT_EQ(fresh.stats().disk_quarantined, 1u);
    EXPECT_TRUE(std::filesystem::exists(path + ".quarantined"));
}

TEST_F(PlanCacheTest, MisKeyedEntryIsDetectedAndQuarantined) {
    TempStoreDir dir("miskey");
    const FusionPlan plan = fig2_plan();
    PlanCache cache(8, dir.path);
    cache.insert(101, plan);
    // Copy a perfectly valid file under another key's name (an operator
    // "restoring" the wrong backup): checksum fine, key line not.
    std::filesystem::copy_file(cache.plan_path(101), cache.plan_path(202));

    PlanCache fresh(8, dir.path);
    EXPECT_FALSE(fresh.lookup(202).has_value());
    EXPECT_EQ(fresh.stats().disk_quarantined, 1u);
    EXPECT_TRUE(std::filesystem::exists(fresh.plan_path(202) + ".quarantined"));
    // The honestly-named original still serves.
    EXPECT_TRUE(fresh.lookup(101).has_value());
}

TEST_F(PlanCacheTest, DiskFaultPointFailsWritesAndMissesReads) {
    TempStoreDir dir("fault");
    const FusionPlan plan = fig2_plan();
    const std::uint64_t key = 55;
    {
        // Armed during insert: the memory entry is fine, persistence fails.
        PlanCache cache(8, dir.path);
        faultpoint::arm("svc.plancache.disk");
        cache.insert(key, plan);
        EXPECT_EQ(cache.stats().disk_writes, 0u);
        EXPECT_EQ(cache.stats().disk_write_failures, 1u);
        EXPECT_FALSE(std::filesystem::exists(cache.plan_path(key)));
        EXPECT_TRUE(cache.lookup(key).has_value()) << "memory tier unaffected";
        EXPECT_GE(faultpoint::hits("svc.plancache.disk"), 1);
        faultpoint::reset();
        cache.insert(key, plan);  // refresh with the fault cleared: persists
        EXPECT_EQ(cache.stats().disk_writes, 1u);
    }
    // Armed during lookup: the disk tier reports a miss and must NOT touch
    // (much less quarantine) the perfectly healthy file.
    PlanCache fresh(8, dir.path);
    faultpoint::arm("svc.plancache.disk");
    EXPECT_FALSE(fresh.lookup(key).has_value());
    EXPECT_EQ(fresh.stats().disk_misses, 1u);
    EXPECT_EQ(fresh.stats().disk_quarantined, 0u);
    EXPECT_TRUE(std::filesystem::exists(fresh.plan_path(key)));
    EXPECT_GE(faultpoint::hits("svc.plancache.disk"), 1);
    faultpoint::reset();
    EXPECT_TRUE(fresh.lookup(key).has_value());
}

TEST_F(PlanCacheTest, NdPlansPersistAndReloadByteIdentical) {
    TempStoreDir dir("nd");
    MldgN g(3);
    g.add_node("A");
    g.add_node("B");
    g.add_edge(0, 1, {VecN{0, 0, 1}});
    const NdFusionPlan plan = plan_fusion_nd(g);
    const std::uint64_t key = PlanCache::key_of_nd(g, PlanOptions{}, true);
    {
        PlanCache cache(8, dir.path);
        cache.insert_nd(key, plan);
        EXPECT_EQ(slurp_file(cache.plan_path(key)), planstore::encode_file_nd(key, plan));
    }
    PlanCache fresh(8, dir.path);
    const auto hit = fresh.lookup_nd(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(fresh.stats().disk_hits, 1u);
    EXPECT_EQ(planstore::encode_file_nd(key, *hit), planstore::encode_file_nd(key, plan));
}

TEST_F(PlanCacheTest, UncreatableStoreDirDegradesToMemoryOnly) {
    TempStoreDir dir("degrade");
    const std::string blocker = dir.path + "/not_a_dir";
    write_raw(blocker, "file in the way\n");
    // create_directories under a regular file must fail; the cache keeps
    // working, just without persistence.
    PlanCache cache(8, blocker + "/store");
    EXPECT_TRUE(cache.persist_dir().empty());
    const FusionPlan plan = fig2_plan();
    cache.insert(5, plan);
    EXPECT_TRUE(cache.lookup(5).has_value());
    EXPECT_EQ(cache.stats().disk_writes, 0u);
}

TEST_F(PlanCacheTest, DecodeFileRejectsArbitraryGarbageWithoutCrashing) {
    const FusionPlan plan = fig2_plan();
    const std::string valid = planstore::encode_file(31337, plan);
    // Every truncation of a valid image must fail with a reason.
    for (std::size_t len = 0; len < valid.size(); len += 7) {
        const auto r = planstore::decode_file(31337, std::string_view(valid.data(), len));
        EXPECT_FALSE(r.ok) << "truncated to " << len;
        EXPECT_FALSE(r.error.empty()) << "truncated to " << len;
    }
    // Every single-byte corruption must fail (the checksum covers all
    // preceding bytes; corrupting the checksum line itself mismatches too).
    for (std::size_t pos = 0; pos < valid.size(); pos += 11) {
        std::string bytes = valid;
        bytes[pos] ^= 0x20;
        EXPECT_FALSE(planstore::decode_file(31337, bytes).ok) << "flipped byte " << pos;
    }
    // Random garbage never crashes, never decodes.
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (int round = 0; round < 200; ++round) {
        std::string junk(37 + static_cast<std::size_t>(round) * 3, '\0');
        for (char& ch : junk) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            ch = static_cast<char>(state >> 33);
        }
        EXPECT_FALSE(planstore::decode_file(1, junk).ok);
    }
    // The wrong expected key rejects an otherwise perfect image.
    EXPECT_FALSE(planstore::decode_file(31338, valid).ok);
    EXPECT_TRUE(planstore::decode_file(31337, valid).ok);
}

TEST_F(PlanCacheTest, ConcurrentCachesShareOneStoreDirSafely) {
    TempStoreDir dir("concurrent");
    // Four caches (four "processes") hammer one store: tiny memory capacity
    // forces constant disk loads while others atomically rewrite the same
    // content-addressed files. Every successful lookup must be the right
    // plan; rename-based writes mean a reader sees an old or a new complete
    // file, never a torn one.
    std::vector<const workloads::Workload*> cases;
    std::vector<std::string> expected;
    for (const auto& w : workloads::paper_workloads()) {
        const auto plan = try_plan_fusion(w.graph);
        if (!plan.ok()) continue;
        cases.push_back(&w);
        expected.push_back(plan_fingerprint(*plan));
    }
    ASSERT_GE(cases.size(), 2u);
    std::atomic<int> mismatches{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&] {
            PlanCache cache(1, dir.path);
            for (int iter = 0; iter < 8; ++iter) {
                for (std::size_t i = 0; i < cases.size(); ++i) {
                    const std::uint64_t key =
                        PlanCache::key_of(cases[i]->graph, PlanOptions{}, true);
                    auto hit = cache.lookup(key);
                    if (!hit.has_value()) {
                        const auto cold = try_plan_fusion(cases[i]->graph);
                        if (!cold.ok()) continue;
                        cache.insert(key, *cold);
                        hit = cache.lookup(key);
                    }
                    if (hit.has_value() && plan_fingerprint(*hit) != expected[i]) {
                        mismatches.fetch_add(1);
                    }
                }
            }
        });
    }
    for (auto& th : pool) th.join();
    EXPECT_EQ(mismatches.load(), 0);
    // After the dust settles every plan file decodes cleanly.
    PlanCache reader(8, dir.path);
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const std::uint64_t key = PlanCache::key_of(cases[i]->graph, PlanOptions{}, true);
        const auto hit = reader.lookup(key);
        ASSERT_TRUE(hit.has_value()) << cases[i]->id;
        EXPECT_EQ(plan_fingerprint(*hit), expected[i]) << cases[i]->id;
    }
    EXPECT_EQ(reader.stats().disk_quarantined, 0u);
}

TEST_F(PlanCacheTest, ServiceWarmStateSurvivesARestart) {
    TempStoreDir dir("service");
    ServiceConfig config;
    config.workers = 1;
    config.plan_store_dir = dir.path;
    std::string file_image;
    {
        FusionService service(config);
        const RunReport report = service.run(twin_jobs());
        ASSERT_EQ(report.jobs.size(), 2u);
        EXPECT_EQ(report.jobs[0].cache, CacheOutcome::Miss);
        EXPECT_EQ(report.jobs[1].cache, CacheOutcome::Hit);
        EXPECT_EQ(report.plancache.disk_writes, 1u);
        const std::uint64_t key =
            PlanCache::key_of(workloads::fig2_graph(), PlanOptions{}, true);
        ASSERT_TRUE(std::filesystem::exists(service.plan_file_path(key)));
        file_image = slurp_file(service.plan_file_path(key));
    }
    // The "restarted" service: no memory state, same store. The first twin
    // is already a hit -- served from the tier the dead service left behind
    // -- and the bytes on disk do not change.
    FusionService reborn(config);
    const RunReport report = reborn.run(twin_jobs());
    ASSERT_EQ(report.jobs.size(), 2u);
    EXPECT_EQ(report.jobs[0].cache, CacheOutcome::Hit);
    EXPECT_EQ(report.jobs[1].cache, CacheOutcome::Hit);
    EXPECT_EQ(report.jobs[0].status, JobStatus::Verified);
    EXPECT_EQ(report.plancache.disk_hits, 1u);
    EXPECT_EQ(report.plancache.disk_writes, 0u);
    const std::uint64_t key = PlanCache::key_of(workloads::fig2_graph(), PlanOptions{}, true);
    EXPECT_EQ(slurp_file(reborn.plan_file_path(key)), file_image)
        << "a pre-kill plan must be served byte-identical after restart";
}

// ---- Warm-started ladder fidelity ----

std::string trace_fingerprint(const std::vector<StageReport>& stages) {
    // Stage names, codes and details only: solver counters legitimately
    // differ between warm and cold runs; results and decisions must not.
    std::string fp;
    for (const auto& s : stages) {
        fp += s.stage + ":" + to_string(s.code) + "[" + s.detail + "]\n";
    }
    return fp;
}

TEST_F(PlanCacheTest, WarmStartedLadderMatchesColdAcrossGallery) {
    PlannerWorkspace ws;
    TryPlanOptions warm_opts;
    warm_opts.workspace = &ws;

    std::vector<Mldg> graphs;
    for (const auto& w : workloads::paper_workloads()) graphs.push_back(w.graph);
    {
        Rng rng(97);
        workloads::RandomGraphOptions opt;
        opt.num_nodes = 48;
        opt.forward_edge_prob = 6.0 / 48;
        opt.backward_edge_prob = 2.0 / 48;
        graphs.push_back(workloads::random_legal_mldg(rng, opt));
    }

    for (std::size_t i = 0; i < graphs.size(); ++i) {
        const auto cold = try_plan_fusion(graphs[i]);
        const auto warm = try_plan_fusion(graphs[i], warm_opts);
        ASSERT_EQ(cold.ok(), warm.ok()) << "graph " << i;
        if (!cold.ok()) continue;
        EXPECT_EQ(plan_fingerprint(*warm), plan_fingerprint(*cold)) << "graph " << i;
        EXPECT_EQ(trace_fingerprint(warm->stages), trace_fingerprint(cold->stages))
            << "graph " << i;
    }
}

TEST_F(PlanCacheTest, SteadyStateWorkspaceAllocationsAreZero) {
    PlannerWorkspace ws;
    TryPlanOptions warm_opts;
    warm_opts.workspace = &ws;

    std::vector<Mldg> graphs;
    for (const auto& w : workloads::paper_workloads()) graphs.push_back(w.graph);

    // First pass grows the arena buffers to the high-water mark ...
    for (const Mldg& g : graphs) (void)try_plan_fusion(g, warm_opts);
    // ... after which re-planning the same inputs allocates nothing at all.
    ws.reset_counters();
    for (const Mldg& g : graphs) (void)try_plan_fusion(g, warm_opts);
    EXPECT_EQ(ws.total_allocations(), 0u);
}

// ---- Plan policy and the cache key ----

TEST_F(PlanCacheTest, PlanPoliciesNeverConflateAndSurviveRestart) {
    // The same MLDG planned under two objectives yields two distinct keys,
    // two cache entries, and both survive a persistent-tier restart with
    // their own plan -- a smallest-code plan must never be served to a
    // fastest-schedule caller or vice versa.
    const Mldg g = workloads::fig8_graph();
    PlanOptions fastest;
    PlanOptions smallest;
    smallest.policy = PlanPolicy::SmallestCode;
    const std::uint64_t kf = PlanCache::key_of(g, fastest, true);
    const std::uint64_t ks = PlanCache::key_of(g, smallest, true);
    EXPECT_NE(kf, ks);
    // The default policy folds nothing into the hash: default keys are
    // bit-identical to the pre-policy scheme, so persistent tiers written
    // before the policy layer stay warm.
    EXPECT_EQ(kf, PlanCache::key_of(g, PlanOptions{}, true));

    const FusionPlan fast_plan = plan_fusion(g, fastest);
    const FusionPlan small_plan = plan_fusion(g, smallest);
    // fig8 is a workload the objective actually changes; conflation would
    // be invisible on a graph where both plans coincide.
    bool plans_differ = false;
    for (int v = 0; v < g.num_nodes(); ++v) {
        plans_differ = plans_differ ||
                       fast_plan.retiming.of(v).x != small_plan.retiming.of(v).x ||
                       fast_plan.retiming.of(v).y != small_plan.retiming.of(v).y;
    }
    ASSERT_TRUE(plans_differ);

    TempStoreDir dir("policy");
    {
        PlanCache cache(8, dir.path);
        cache.insert(kf, fast_plan);
        cache.insert(ks, small_plan);
        EXPECT_EQ(cache.stats().insertions, 2u);
        EXPECT_EQ(cache.size(), 2u);
    }
    // Cold restart: both entries come back from disk, each under its key.
    PlanCache fresh(8, dir.path);
    const auto hit_fast = fresh.lookup(kf);
    const auto hit_small = fresh.lookup(ks);
    ASSERT_TRUE(hit_fast.has_value());
    ASSERT_TRUE(hit_small.has_value());
    for (int v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(hit_fast->retiming.of(v).x, fast_plan.retiming.of(v).x);
        EXPECT_EQ(hit_fast->retiming.of(v).y, fast_plan.retiming.of(v).y);
        EXPECT_EQ(hit_small->retiming.of(v).x, small_plan.retiming.of(v).x);
        EXPECT_EQ(hit_small->retiming.of(v).y, small_plan.retiming.of(v).y);
    }
}

TEST_F(PlanCacheTest, PlanPolicyKeysAreDistinctForNdGraphsToo) {
    PlanOptions smallest;
    smallest.policy = PlanPolicy::SmallestCode;
    for (const JobSpec& job : nd_jobs()) {
        EXPECT_NE(PlanCache::key_of_nd(job.graph_nd, PlanOptions{}, true),
                  PlanCache::key_of_nd(job.graph_nd, smallest, true))
            << job.id;
    }
}

}  // namespace
}  // namespace lf::svc
