// The robustness layer end to end: Status/Result taxonomy, ResourceGuard
// budgets, the fault-point registry, solver hardening (budget + overflow),
// and try_plan_fusion's degradation ladder -- including the exact rung each
// injected fault degrades to, and golden equivalence of the terminal
// loop-distribution fallback.

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "exec/compile.hpp"
#include "exec/engines.hpp"
#include "exec/equivalence.hpp"
#include "exec/runner.hpp"
#include "fusion/ablation.hpp"
#include "fusion/driver.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/constraint_system_nd.hpp"
#include "graph/spfa.hpp"
#include "ir/parser.hpp"
#include "ldg/legality.hpp"
#include "ldg/retiming.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "support/faultpoint.hpp"
#include "support/status.hpp"
#include "svc/manifest.hpp"
#include "svc/service.hpp"
#include "transform/codegen.hpp"
#include "transform/distribution.hpp"
#include "transform/fused_program.hpp"
#include "workloads/gallery.hpp"
#include "workloads/sources.hpp"

namespace lf {
namespace {

class RobustnessTest : public ::testing::Test {
  protected:
    void SetUp() override { faultpoint::reset(); }
    void TearDown() override { faultpoint::reset(); }
};

// ---------------------------------------------------------------------------
// Taxonomy, Status, Result.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, StatusCodeNamesAreStable) {
    EXPECT_EQ(to_string(StatusCode::Ok), "ok");
    EXPECT_EQ(to_string(StatusCode::IllegalInput), "illegal-input");
    EXPECT_EQ(to_string(StatusCode::Infeasible), "infeasible");
    EXPECT_EQ(to_string(StatusCode::ResourceExhausted), "resource-exhausted");
    EXPECT_EQ(to_string(StatusCode::Overflow), "overflow");
    EXPECT_EQ(to_string(StatusCode::Internal), "internal");
}

TEST_F(RobustnessTest, StatusDefaultsToOkAndFormatsStages) {
    Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), StatusCode::Ok);

    Status err(StatusCode::Infeasible, "no retiming exists");
    err.stages.push_back(StageReport{"cyclic-doall", StatusCode::Infeasible,
                                     "phase 2 infeasible", 17, {}});
    EXPECT_FALSE(err.ok());
    const std::string text = err.str();
    EXPECT_NE(text.find("infeasible"), std::string::npos);
    EXPECT_NE(text.find("no retiming exists"), std::string::npos);
    EXPECT_NE(text.find("cyclic-doall"), std::string::npos);
    EXPECT_NE(text.find("17"), std::string::npos);
}

TEST_F(RobustnessTest, ResultHoldsValueOrStatus) {
    Result<int> good(42);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(good.status().code(), StatusCode::Ok);

    Result<int> bad(Status(StatusCode::Overflow, "weight sum overflowed"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::Overflow);
    EXPECT_THROW((void)bad.value(), Error);  // never-throwing surface: branch on ok()
}

// ---------------------------------------------------------------------------
// ResourceGuard semantics.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, GuardStepBudgetIsExactAndSticky) {
    ResourceGuard guard(ResourceLimits{5, -1});
    for (int k = 0; k < 5; ++k) EXPECT_TRUE(guard.consume()) << "step " << k;
    EXPECT_FALSE(guard.consume());  // sixth step exceeds the budget
    EXPECT_TRUE(guard.exhausted());
    EXPECT_FALSE(guard.consume());  // sticky
}

TEST_F(RobustnessTest, GuardZeroDeadlineExpiresOnFirstStep) {
    ResourceGuard guard(ResourceLimits{kUnlimitedSteps, 0});
    EXPECT_FALSE(guard.consume());  // deterministic: the first step checks the clock
    EXPECT_TRUE(guard.exhausted());
}

TEST_F(RobustnessTest, DefaultGuardIsUnlimited) {
    ResourceGuard guard;
    for (int k = 0; k < 100000; ++k) ASSERT_TRUE(guard.consume());
    EXPECT_EQ(guard.consumed(), 100000u);
}

// ---------------------------------------------------------------------------
// Fault-point registry.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, RegistryArmDisarmHitsRoundTrip) {
    EXPECT_FALSE(faultpoint::is_armed("llofra"));
    EXPECT_FALSE(faultpoint::triggered("llofra"));
    faultpoint::arm("llofra");
    EXPECT_TRUE(faultpoint::is_armed("llofra"));
    EXPECT_TRUE(faultpoint::triggered("llofra"));
    EXPECT_TRUE(faultpoint::triggered("llofra"));
    EXPECT_EQ(faultpoint::hits("llofra"), 2u);
    faultpoint::disarm("llofra");
    EXPECT_FALSE(faultpoint::triggered("llofra"));
    EXPECT_EQ(faultpoint::hits("llofra"), 2u);  // disarm keeps counters
    faultpoint::reset();
    EXPECT_EQ(faultpoint::hits("llofra"), 0u);
}

TEST_F(RobustnessTest, RegistryParsesLfFaultSpecSyntax) {
    faultpoint::arm_from_spec(" llofra , cyclic_doall.phase2 ,, solver.spfa ");
    EXPECT_TRUE(faultpoint::is_armed("llofra"));
    EXPECT_TRUE(faultpoint::is_armed("cyclic_doall.phase2"));
    EXPECT_TRUE(faultpoint::is_armed("solver.spfa"));
    EXPECT_FALSE(faultpoint::is_armed("hyperplane"));
}

TEST_F(RobustnessTest, RegistryKnowsEveryPipelinePoint) {
    const auto points = faultpoint::known_points();
    for (const char* expected :
         {"acyclic_doall", "cyclic_doall.phase1", "cyclic_doall.phase2", "forced_carry",
          "llofra", "hyperplane", "distribution", "solver.bellman_ford", "solver.spfa",
          "codegen.fuse", "codegen.emit"}) {
        EXPECT_NE(std::find(points.begin(), points.end(), expected), points.end())
            << "missing fault point: " << expected;
    }
}

// ---------------------------------------------------------------------------
// Baseline: with no faults and no budget, the ladder reproduces plan_fusion.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, LadderMatchesClassicPlannerWhenHealthy) {
    for (const auto& w : workloads::paper_workloads()) {
        if (!is_schedulable(w.graph)) continue;  // fig14-as-printed
        const FusionPlan classic = plan_fusion(w.graph);
        const auto result = try_plan_fusion(w.graph);
        ASSERT_TRUE(result.ok()) << w.id << ": " << result.status().str();
        EXPECT_EQ(result->algorithm, classic.algorithm) << w.id;
        EXPECT_EQ(result->level, classic.level) << w.id;
        EXPECT_EQ(result->retiming, classic.retiming) << w.id;
        EXPECT_EQ(result->body_order, classic.body_order) << w.id;
        EXPECT_FALSE(result->stages.empty());
        EXPECT_EQ(result->stages.back().code, StatusCode::Ok);
    }
}

TEST_F(RobustnessTest, LadderRejectsUnschedulableInput) {
    const auto result = try_plan_fusion(workloads::fig14_graph_as_printed());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::IllegalInput);
    ASSERT_FALSE(result.status().stages.empty());
    EXPECT_EQ(result.status().stages.front().stage, "validate");
}

// ---------------------------------------------------------------------------
// Every fault point is reachable: arm each in turn, run a battery spanning
// the whole pipeline, and require at least one recorded hit.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, EveryFaultPointFires) {
    const auto points = faultpoint::known_points();
    ASSERT_GE(points.size(), 12u);
    for (const std::string& point : points) {
        faultpoint::reset();
        faultpoint::arm(point);

        // Graph-level planning over all three paper figures plus a
        // zero-budget run (reaches the distribution rung).
        for (const Mldg& g :
             {workloads::fig2_graph(), workloads::fig8_graph(), workloads::fig14_graph()}) {
            EXPECT_NO_THROW((void)try_plan_fusion(g)) << point;
        }
        {
            TryPlanOptions opts;
            opts.limits.max_steps = 0;
            EXPECT_NO_THROW((void)try_plan_fusion(workloads::fig2_graph(), opts)) << point;
        }

        // Direct solver pokes (SPFA is not on the planning path; the n-D
        // system is the same unified template, exercised via its alias).
        {
            const std::vector<WeightedEdge<std::int64_t>> edges{{0, 1, 1}, {1, 0, -1}};
            (void)bellman_ford_all_sources<std::int64_t>(2, edges);
            (void)bellman_ford<std::int64_t>(2, edges, 0);
            (void)spfa_all_sources<std::int64_t>(2, edges);
            NdDifferenceConstraintSystem sys(3);
            const int a = sys.add_variable("a");
            const int b = sys.add_variable("b");
            sys.add_constraint(a, b, VecN({1, 0, 0}));
            (void)sys.solve();
        }

        // Program pipeline: parse -> plan -> fuse -> emit. Codegen points
        // throw lf::Error by design; everything else must stay exception-free.
        try {
            const ir::Program p = ir::parse_program(workloads::sources::kFig2);
            const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
            const auto fused = transform::fuse_program(p, plan);
            (void)transform::emit_transformed(fused, Domain{10, 10});
        } catch (const Error&) {
            // expected for solver/codegen faults on the throwing surface
        }

        // Fusion service: one single-worker, single-attempt job with a
        // checkpoint, reaching the svc.* points (plan, both gate halves,
        // checkpoint append).
        {
            const std::string ckpt = ::testing::TempDir() + "robustness_fire.ckpt";
            std::remove(ckpt.c_str());
            svc::ServiceConfig config;
            config.workers = 1;
            config.retry.max_attempts = 1;
            config.checkpoint_path = ckpt;
            svc::FusionService service(config);
            std::vector<svc::JobSpec> jobs;
            jobs.push_back(svc::job_from_dsl_text("fig2", std::string(workloads::sources::kFig2),
                                                  "paper"));
            EXPECT_NO_THROW((void)service.run(jobs)) << point;
            // svc.verify.replay only fires after certification passes;
            // with svc.verify.certify also armed in other iterations they
            // are independent, but within one iteration the single armed
            // point always gets its shot.
            std::remove(ckpt.c_str());
        }

        // Network edge: the net.* points live on the server's accept / read /
        // write paths, so reach them over a real loopback connection. A ping
        // is enough: accepting the connection hits net.accept, reading the
        // ping hits net.read, writing the pong hits net.write and
        // net.torn_response. Whatever the armed fault does, the exchange
        // must end in a closed connection or a frame, never a crash.
        if (point.rfind("net.", 0) == 0) {
            net::ServerConfig server_config;
            server_config.service.workers = 1;
            net::Server server(server_config);
            std::string error;
            ASSERT_TRUE(server.start(&error)) << point << ": " << error;
            net::BlockingClient client;
            if (client.connect("127.0.0.1", server.port(), 1000)) {
                net::Frame ping;
                ping.type = net::FrameType::Ping;
                ping.request_id = 1;
                if (client.send(ping)) (void)client.recv(2000);
            }
            server.stop();
        }

        // Native execution backend: exec.compile fires at the compiler's
        // entry (before any cc subprocess), exec.spawn before the fork, and
        // exec.run / exec.timeout / exec.oom turn the forked worker into a
        // crash / spin / OOM drill before it touches the object -- so every
        // exec.* point is reachable with a bogus path and no compiler. The
        // parent must classify each as a typed contained outcome.
        if (point.rfind("exec.", 0) == 0) {
            if (point == "exec.compile") {
                exec::KernelCompiler compiler;
                const auto r = compiler.compile("int x;\n");
                EXPECT_FALSE(r.ok()) << point;
            } else {
                exec::SandboxLimits limits;
                // The spin drill must hit the watchdog, so its wall budget
                // stays short. The crash / OOM drills die as soon as the
                // forked child is scheduled; a short wall there only races
                // the watchdog against CPU starvation when the suite runs
                // under `ctest -j` on a loaded box.
                limits.wall_ms = (point == "exec.timeout") ? 400 : 10'000;
                limits.term_grace_ms = 100;
                limits.address_space_bytes = 256 << 20;
                const exec::RunOutcome out =
                    exec::run_kernel("/nonexistent/kernel.so", limits);
                EXPECT_NE(out.state, exec::RunState::Completed) << point;
                if (point == "exec.timeout") {
                    EXPECT_EQ(out.state, exec::RunState::Timeout) << out.detail;
                } else if (point == "exec.run" || point == "exec.oom") {
                    EXPECT_EQ(out.state, exec::RunState::Crashed) << out.detail;
                }
            }
        }

        EXPECT_GE(faultpoint::hits(point), 1u) << "fault point never reached: " << point;
    }
}

// ---------------------------------------------------------------------------
// Degradation ladder: exact rung per injected fault.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, Phase1FaultDegradesToForcedCarryOrHyperplane) {
    const Mldg g = workloads::fig2_graph();
    // The expected rung is derived from the library itself, not hard-coded:
    // the forced-carry variant rescues the plan iff its system is feasible.
    const bool forced_feasible = ablation::cyclic_doall_all_hard(g).has_value();

    faultpoint::arm("cyclic_doall.phase1");
    const auto result = try_plan_fusion(g);
    ASSERT_TRUE(result.ok()) << result.status().str();
    EXPECT_EQ(result->algorithm, forced_feasible ? AlgorithmUsed::CyclicDoallForced
                                                 : AlgorithmUsed::Hyperplane);
    ASSERT_TRUE(result->cyclic_doall_failed_phase.has_value());
    EXPECT_EQ(*result->cyclic_doall_failed_phase, 1);
}

TEST_F(RobustnessTest, StackedFaultsDegradeToHyperplane) {
    faultpoint::arm("cyclic_doall.phase1");
    faultpoint::arm("forced_carry");
    const auto result = try_plan_fusion(workloads::fig2_graph());
    ASSERT_TRUE(result.ok()) << result.status().str();
    EXPECT_EQ(result->algorithm, AlgorithmUsed::Hyperplane);
    EXPECT_EQ(result->level, ParallelismLevel::Hyperplane);
    // The trace names every rung that fell through.
    std::vector<std::string> names;
    for (const auto& s : result->stages) names.push_back(s.stage);
    EXPECT_NE(std::find(names.begin(), names.end(), "cyclic-doall"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "forced-carry"), names.end());
    EXPECT_EQ(result->stages.back().stage, "hyperplane");
    EXPECT_EQ(result->stages.back().code, StatusCode::Ok);
}

TEST_F(RobustnessTest, AllAlgorithmFaultsDegradeToDistribution) {
    for (const char* point : {"cyclic_doall.phase1", "forced_carry", "hyperplane"}) {
        faultpoint::arm(point);
    }
    const auto result = try_plan_fusion(workloads::fig2_graph());
    ASSERT_TRUE(result.ok()) << result.status().str();
    EXPECT_EQ(result->algorithm, AlgorithmUsed::DistributionFallback);
    EXPECT_EQ(result->level, ParallelismLevel::Unfused);
    EXPECT_EQ(result->retiming, Retiming(result->retimed.num_nodes()));  // identity
    // The unfused plan is the original graph in program order.
    EXPECT_EQ(result->retimed.num_edges(), workloads::fig2_graph().num_edges());
}

TEST_F(RobustnessTest, DistributionRungRequiresProgramModelLegality) {
    // fig14 is schedulable but not program-model legal: with its only viable
    // algorithm faulted, the ladder must fail rather than hand back an
    // unexecutable "unfused" program.
    faultpoint::arm("hyperplane");
    const auto result = try_plan_fusion(workloads::fig14_graph());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::Internal);
    ASSERT_FALSE(result.status().stages.empty());
    const auto& stages = result.status().stages;
    const auto dist = std::find_if(stages.begin(), stages.end(), [](const StageReport& s) {
        return s.stage == "distribution";
    });
    ASSERT_NE(dist, stages.end());
    EXPECT_EQ(dist->code, StatusCode::IllegalInput);
}

TEST_F(RobustnessTest, FallbackDisabledReproducesClassicFailure) {
    for (const char* point : {"cyclic_doall.phase1", "forced_carry", "hyperplane"}) {
        faultpoint::arm(point);
    }
    TryPlanOptions opts;
    opts.allow_distribution_fallback = false;
    const auto result = try_plan_fusion(workloads::fig2_graph(), opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::Internal);
    EXPECT_FALSE(result.status().stages.empty());
}

// ---------------------------------------------------------------------------
// Distribution fallback: golden equivalence.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, DistributionFallbackPreservesSemantics) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    for (const char* point : {"cyclic_doall.phase1", "forced_carry", "hyperplane"}) {
        faultpoint::arm(point);
    }
    const auto result = try_plan_fusion(analysis::build_mldg(p));
    ASSERT_TRUE(result.ok()) << result.status().str();
    ASSERT_EQ(result->algorithm, AlgorithmUsed::DistributionFallback);
    faultpoint::reset();

    // The rung's meaning: run the program unfused (distributed). That must
    // be bit-exact against the original.
    const ir::Program distributed = transform::distribute_program(p);
    const Domain dom{20, 20};
    exec::ArrayStore golden(p, dom);
    exec::ArrayStore subject(p, dom);
    (void)exec::run_original(p, dom, golden);
    (void)exec::run_original(distributed, dom, subject);
    EXPECT_FALSE(exec::first_difference(p, dom, golden, subject).has_value());
}

// ---------------------------------------------------------------------------
// Resource budgets through the ladder and the solvers.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, TinyBudgetYieldsResourceExhausted) {
    TryPlanOptions opts;
    opts.limits.max_steps = 1;
    opts.allow_distribution_fallback = false;
    const auto result = try_plan_fusion(workloads::fig2_graph(), opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::ResourceExhausted);
    EXPECT_FALSE(result.status().stages.empty());
}

TEST_F(RobustnessTest, TinyBudgetWithFallbackStillPlans) {
    TryPlanOptions opts;
    opts.limits.max_steps = 0;
    const auto result = try_plan_fusion(workloads::fig2_graph(), opts);
    ASSERT_TRUE(result.ok()) << result.status().str();
    EXPECT_EQ(result->algorithm, AlgorithmUsed::DistributionFallback);
    const bool saw_exhausted =
        std::any_of(result->stages.begin(), result->stages.end(), [](const StageReport& s) {
            return s.code == StatusCode::ResourceExhausted;
        });
    EXPECT_TRUE(saw_exhausted);
}

TEST_F(RobustnessTest, ExpiredDeadlineYieldsResourceExhausted) {
    TryPlanOptions opts;
    opts.limits.max_wall_ms = 0;
    opts.allow_distribution_fallback = false;
    const auto result = try_plan_fusion(workloads::fig2_graph(), opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::ResourceExhausted);
}

TEST_F(RobustnessTest, SolversHonorStepBudgetsDirectly) {
    // A chain long enough that each full solve needs well over 8 relaxation
    // attempts.
    std::vector<WeightedEdge<std::int64_t>> edges;
    for (int v = 0; v + 1 < 16; ++v) edges.push_back({v, v + 1, -1});

    ResourceGuard g1(ResourceLimits{8, -1});
    EXPECT_EQ(bellman_ford_all_sources<std::int64_t>(16, edges, &g1).status,
              StatusCode::ResourceExhausted);

    ResourceGuard g2(ResourceLimits{8, -1});
    EXPECT_EQ(spfa_all_sources<std::int64_t>(16, edges, &g2).status,
              StatusCode::ResourceExhausted);

    NdDifferenceConstraintSystem sys(2);
    for (int v = 0; v < 16; ++v) (void)sys.add_variable();
    for (int v = 0; v + 1 < 16; ++v) sys.add_constraint(v, v + 1, VecN({-1, 0}));
    ResourceGuard g3(ResourceLimits{8, -1});
    EXPECT_EQ(sys.solve(&g3).status, StatusCode::ResourceExhausted);

    // With no guard, all three complete normally on the same inputs.
    EXPECT_EQ(bellman_ford_all_sources<std::int64_t>(16, edges).status, StatusCode::Ok);
    EXPECT_EQ(spfa_all_sources<std::int64_t>(16, edges).status, StatusCode::Ok);
    EXPECT_EQ(sys.solve().status, StatusCode::Ok);
}

// ---------------------------------------------------------------------------
// Overflow regression: near-INT64_MAX dependence vectors.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, HugeDependenceVectorsAreRejectedUpFront) {
    const std::int64_t huge = std::numeric_limits<std::int64_t>::max() - 1;
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    (void)g.add_edge(a, b, {Vec2{huge, 0}});
    (void)g.add_edge(b, a, {Vec2{1, 0}});

    const LegalityReport model = check_mldg_legality(g);
    EXPECT_FALSE(model.legal);
    ASSERT_FALSE(model.violations.empty());
    EXPECT_NE(model.violations.front().find("magnitude"), std::string::npos);

    EXPECT_FALSE(check_schedulable(g).legal);
    EXPECT_THROW((void)plan_fusion(g), Error);

    const auto result = try_plan_fusion(g);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::IllegalInput);
}

TEST_F(RobustnessTest, NegativeHugeVectorsDoNotTripAbsUb) {
    // INT64_MIN has no representable absolute value; the magnitude check must
    // reject it without computing one.
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    (void)g.add_edge(a, b, {Vec2{1, std::numeric_limits<std::int64_t>::min()}});
    EXPECT_FALSE(check_mldg_legality(g).legal);
    EXPECT_FALSE(check_schedulable(g).legal);
}

TEST_F(RobustnessTest, RetimingArithmeticSaturatesInsteadOfWrapping) {
    const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    Mldg g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    (void)g.add_edge(a, b, {Vec2{kMax - 1, 0}});

    Retiming r(2);
    r.of(a) = Vec2{kMax, 0};
    r.of(b) = Vec2{0, 0};
    const Mldg shifted = r.apply(g);  // (kMax-1) + kMax saturates, no UB
    EXPECT_EQ(shifted.edge(0).vectors.front().x, kMax);

    // The inline form agrees.
    EXPECT_EQ(r.retimed(g.edge(0), g.edge(0).vectors.front()).x, kMax);
}

TEST_F(RobustnessTest, SolversReportOverflowInsteadOfWrapping) {
    // A negative 2-cycle of magnitude 2^62: repeated relaxation must cross
    // the int64 floor within a few passes and be reported, not wrap.
    const std::int64_t w = -(std::int64_t{1} << 62);
    const std::vector<WeightedEdge<std::int64_t>> edges{{0, 1, w}, {1, 0, w}};
    EXPECT_EQ(bellman_ford_all_sources<std::int64_t>(2, edges).status, StatusCode::Overflow);
    EXPECT_EQ(spfa_all_sources<std::int64_t>(2, edges).status, StatusCode::Overflow);

    NdDifferenceConstraintSystem sys(2);
    const int a = sys.add_variable("a");
    const int b = sys.add_variable("b");
    sys.add_constraint(a, b, VecN({w, 0}));
    sys.add_constraint(b, a, VecN({w, 0}));
    EXPECT_EQ(sys.solve().status, StatusCode::Overflow);
}

// ---------------------------------------------------------------------------
// Codegen fault points use the throwing surface.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, CodegenFaultsThrowCleanErrors) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));

    faultpoint::arm("codegen.fuse");
    EXPECT_THROW((void)transform::fuse_program(p, plan), Error);
    faultpoint::disarm("codegen.fuse");

    const auto fused = transform::fuse_program(p, plan);
    faultpoint::arm("codegen.emit");
    EXPECT_THROW((void)transform::emit_transformed(fused, Domain{10, 10}), Error);
}

TEST_F(RobustnessTest, FuseProgramRejectsUnfusedFallbackPlans) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    for (const char* point : {"cyclic_doall.phase1", "forced_carry", "hyperplane"}) {
        faultpoint::arm(point);
    }
    const auto result = try_plan_fusion(analysis::build_mldg(p));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->level, ParallelismLevel::Unfused);
    faultpoint::reset();
    EXPECT_THROW((void)transform::fuse_program(p, *result), Error);
}

}  // namespace
}  // namespace lf
