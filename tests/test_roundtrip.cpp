// Round-trip and semantics-preservation properties that cut across modules:
// printing/parsing, statement shifting, and store construction options.

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "exec/engines.hpp"
#include "exec/equivalence.hpp"
#include "front/parse.hpp"
#include "ir/parser.hpp"
#include "support/rng.hpp"
#include "workloads/extra.hpp"
#include "workloads/generators.hpp"
#include "workloads/sources.hpp"

namespace lf {
namespace {

class RoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripTest, RandomProgramsSurvivePrintParsePrint) {
    Rng rng(GetParam() * 7 + 1);
    const ir::Program p1 = workloads::random_program(rng);
    const ir::Program p2 = ir::parse_program(p1.str());
    EXPECT_EQ(p1.str(), p2.str());
    // The reparsed program analyzes to the identical dependence graph.
    const Mldg g1 = analysis::build_mldg(p1);
    const Mldg g2 = analysis::build_mldg(p2);
    ASSERT_EQ(g1.num_edges(), g2.num_edges());
    for (int e = 0; e < g1.num_edges(); ++e) {
        EXPECT_EQ(g1.edge(e).vectors, g2.edge(e).vectors);
    }
}

TEST_P(RoundTripTest, ShiftedStatementsEvaluateAtShiftedInstances) {
    // s.shifted(delta) evaluated at (i, j) must equal s evaluated at
    // (i, j) + delta -- that is exactly why codegen can print retimed
    // statements by shifting subscripts.
    Rng rng(GetParam() * 11 + 3);
    const ir::Program p = workloads::random_program(rng);
    const Domain dom{8, 8};
    exec::ArrayStore store(p, dom, /*halo=*/p.max_offset() + 4);

    const Vec2 delta{rng.uniform(-2, 2), rng.uniform(-2, 2)};
    for (const auto& loop : p.loops) {
        for (const auto& s : loop.body) {
            const ir::Statement shifted = s.shifted(delta);
            for (std::int64_t i = 2; i <= 4; ++i) {
                for (std::int64_t j = 2; j <= 4; ++j) {
                    EXPECT_DOUBLE_EQ(shifted.eval(store, i, j),
                                     s.eval(store, i + delta.x, j + delta.y))
                        << s.str() << " shifted by " << delta.str();
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range<std::uint64_t>(0, 15));

/// Parse -> print -> reparse -> structural equality (same print, same
/// dependence graph), through the one unified front end.
void expect_print_reparse_stable(std::string_view source) {
    const front::AnyProgram first = front::parse_any_program(source);
    if (first.is_2d()) {
        const front::AnyProgram again = front::parse_any_program(first.p2->str());
        ASSERT_TRUE(again.is_2d());
        EXPECT_EQ(first.p2->str(), again.p2->str());
        const Mldg g1 = analysis::build_mldg(*first.p2);
        const Mldg g2 = analysis::build_mldg(*again.p2);
        ASSERT_EQ(g1.num_edges(), g2.num_edges()) << first.p2->name;
        for (int e = 0; e < g1.num_edges(); ++e) {
            EXPECT_EQ(g1.edge(e).vectors, g2.edge(e).vectors) << first.p2->name;
        }
    } else {
        const front::AnyProgram again = front::parse_any_program(first.pn->str());
        ASSERT_FALSE(again.is_2d());
        EXPECT_EQ(first.pn->str(), again.pn->str());
        EXPECT_EQ(first.pn->dim, again.pn->dim);
        const MldgN g1 = analysis::build_mldg_nd(*first.pn);
        const MldgN g2 = analysis::build_mldg_nd(*again.pn);
        ASSERT_EQ(g1.num_edges(), g2.num_edges()) << first.pn->name;
        for (int e = 0; e < g1.num_edges(); ++e) {
            EXPECT_EQ(g1.edge(e).vectors, g2.edge(e).vectors) << first.pn->name;
        }
    }
}

TEST(RoundTripGolden, EveryGallerySourceSurvivesPrintReparse) {
    // The complete source gallery, both depths.
    const std::string_view gallery[] = {
        workloads::sources::kFig2,       workloads::sources::kFig8,
        workloads::sources::kJacobiPair, workloads::sources::kIirChain,
        workloads::sources::kVolume3d,   workloads::sources::kHyper4d,
    };
    for (const std::string_view source : gallery) {
        expect_print_reparse_stable(source);
    }
}

TEST(RoundTripGolden, EveryExtraWorkloadSourceSurvivesPrintReparse) {
    for (const auto& w : workloads::extra_workloads()) {
        SCOPED_TRACE(w.id);
        expect_print_reparse_stable(w.dsl_source);
    }
}

TEST(RoundTripGolden, ExampleDslInputsSurvivePrintReparse) {
    // The DSL programs embedded in examples/ (weather_stencil.cpp and
    // image_pipeline.cpp; quickstart/emit_c reuse kFig2, covered above).
    constexpr std::string_view kWeather = R"(
program weather {
  loop Pressure {
    p[i][j] = 0.6 * p[i-1][j] + 0.2 * (w[i-1][j-1] + w[i-1][j+1]);
  }
  loop Wind {
    w[i][j] = 0.5 * (p[i][j-1] + p[i][j+1]) + 0.1 * w[i-1][j];
  }
  loop Temp {
    t[i][j] = 0.25 * (w[i][j-2] + w[i][j+2]) + 0.9 * t[i-1][j];
  }
}
)";
    constexpr std::string_view kPipeline = R"(
program image_pipeline {
  loop Blur {
    blur[i][j] = 0.25 * (frame[i][j-1] + 2.0 * frame[i][j] + frame[i][j+1])
               + 0.05 * motion[i-2][j];
  }
  loop Sharpen {
    sharp[i][j] = 1.4 * blur[i][j] - 0.2 * (blur[i][j-1] + blur[i][j+1]);
  }
  loop Edge {
    edge[i][j] = sharp[i][j+1] - sharp[i][j-1];
  }
  loop Motion {
    motion[i][j] = edge[i][j] - edge[i-1][j] + 0.5 * motion[i-1][j];
  }
}
)";
    expect_print_reparse_stable(kWeather);
    expect_print_reparse_stable(kPipeline);
}

TEST(StoreOptions, ExplicitHaloOverridesDefault) {
    const ir::Program p = ir::parse_program("program t { loop A { a[i][j] = x[i-1][j]; } }");
    const Domain dom{3, 3};
    exec::ArrayStore wide(p, dom, /*halo=*/5);
    EXPECT_NO_THROW((void)wide.load("a", -5, -5));
    EXPECT_THROW((void)wide.load("a", -6, 0), Error);

    exec::ArrayStore tight(p, dom);  // default halo = max offset = 1
    EXPECT_NO_THROW((void)tight.load("a", -1, 0));
    EXPECT_THROW((void)tight.load("a", -2, 0), Error);
}

TEST(StoreOptions, HaloSizeDoesNotChangeResults) {
    // Extra halo adds more initialized boundary cells but cannot change any
    // computed value inside the domain.
    Rng rng(99);
    const ir::Program p = workloads::random_program(rng);
    const Domain dom{10, 10};
    exec::ArrayStore a(p, dom);
    exec::ArrayStore b(p, dom, p.max_offset() + 7);
    (void)exec::run_original(p, dom, a);
    (void)exec::run_original(p, dom, b);
    EXPECT_FALSE(exec::first_difference(p, dom, a, b).has_value());
}

}  // namespace
}  // namespace lf
