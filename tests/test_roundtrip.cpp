// Round-trip and semantics-preservation properties that cut across modules:
// printing/parsing, statement shifting, and store construction options.

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "exec/engines.hpp"
#include "exec/equivalence.hpp"
#include "ir/parser.hpp"
#include "support/rng.hpp"
#include "workloads/generators.hpp"

namespace lf {
namespace {

class RoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripTest, RandomProgramsSurvivePrintParsePrint) {
    Rng rng(GetParam() * 7 + 1);
    const ir::Program p1 = workloads::random_program(rng);
    const ir::Program p2 = ir::parse_program(p1.str());
    EXPECT_EQ(p1.str(), p2.str());
    // The reparsed program analyzes to the identical dependence graph.
    const Mldg g1 = analysis::build_mldg(p1);
    const Mldg g2 = analysis::build_mldg(p2);
    ASSERT_EQ(g1.num_edges(), g2.num_edges());
    for (int e = 0; e < g1.num_edges(); ++e) {
        EXPECT_EQ(g1.edge(e).vectors, g2.edge(e).vectors);
    }
}

TEST_P(RoundTripTest, ShiftedStatementsEvaluateAtShiftedInstances) {
    // s.shifted(delta) evaluated at (i, j) must equal s evaluated at
    // (i, j) + delta -- that is exactly why codegen can print retimed
    // statements by shifting subscripts.
    Rng rng(GetParam() * 11 + 3);
    const ir::Program p = workloads::random_program(rng);
    const Domain dom{8, 8};
    exec::ArrayStore store(p, dom, /*halo=*/p.max_offset() + 4);

    const Vec2 delta{rng.uniform(-2, 2), rng.uniform(-2, 2)};
    for (const auto& loop : p.loops) {
        for (const auto& s : loop.body) {
            const ir::Statement shifted = s.shifted(delta);
            for (std::int64_t i = 2; i <= 4; ++i) {
                for (std::int64_t j = 2; j <= 4; ++j) {
                    EXPECT_DOUBLE_EQ(shifted.eval(store, i, j),
                                     s.eval(store, i + delta.x, j + delta.y))
                        << s.str() << " shifted by " << delta.str();
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range<std::uint64_t>(0, 15));

TEST(StoreOptions, ExplicitHaloOverridesDefault) {
    const ir::Program p = ir::parse_program("program t { loop A { a[i][j] = x[i-1][j]; } }");
    const Domain dom{3, 3};
    exec::ArrayStore wide(p, dom, /*halo=*/5);
    EXPECT_NO_THROW((void)wide.load("a", -5, -5));
    EXPECT_THROW((void)wide.load("a", -6, 0), Error);

    exec::ArrayStore tight(p, dom);  // default halo = max offset = 1
    EXPECT_NO_THROW((void)tight.load("a", -1, 0));
    EXPECT_THROW((void)tight.load("a", -2, 0), Error);
}

TEST(StoreOptions, HaloSizeDoesNotChangeResults) {
    // Extra halo adds more initialized boundary cells but cannot change any
    // computed value inside the domain.
    Rng rng(99);
    const ir::Program p = workloads::random_program(rng);
    const Domain dom{10, 10};
    exec::ArrayStore a(p, dom);
    exec::ArrayStore b(p, dom, p.max_offset() + 7);
    (void)exec::run_original(p, dom, a);
    (void)exec::run_original(p, dom, b);
    EXPECT_FALSE(exec::first_difference(p, dom, a, b).has_value());
}

}  // namespace
}  // namespace lf
