// Tests for the .ldg graph format: round-trip stability, error reporting,
// and interchangeability with the gallery graphs.

#include <gtest/gtest.h>

#include "ldg/serialization.hpp"
#include "support/diagnostics.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"

namespace lf {
namespace {

void expect_same(const Mldg& a, const Mldg& b) {
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (int v = 0; v < a.num_nodes(); ++v) {
        EXPECT_EQ(a.node(v).name, b.node(v).name);
        EXPECT_EQ(a.node(v).body_cost, b.node(v).body_cost);
        EXPECT_EQ(a.node(v).order, b.node(v).order);
    }
    for (int e = 0; e < a.num_edges(); ++e) {
        const auto found = b.find_edge(a.edge(e).from, a.edge(e).to);
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(b.edge(*found).vectors, a.edge(e).vectors);
    }
}

TEST(Serialization, RoundTripsEveryGalleryGraph) {
    for (const auto& w : workloads::paper_workloads()) {
        const std::string text = serialize_mldg(w.graph, w.id);
        expect_same(parse_mldg(text), w.graph);
    }
}

TEST(Serialization, RoundTripsRandomGraphs) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed);
        const Mldg g = workloads::random_legal_mldg(rng);
        expect_same(parse_mldg(serialize_mldg(g)), g);
    }
}

TEST(Serialization, ParsesHandWrittenGraph) {
    const Mldg g = parse_mldg(R"(
      # paper Figure 2
      mldg fig2 {
        node A cost 2;
        node B;
        edge A B { (1,1) (2,1) };
        edge B A { (0,-2) };
      }
    )");
    EXPECT_EQ(g.num_nodes(), 2);
    EXPECT_EQ(g.node(0).body_cost, 2);
    EXPECT_EQ(g.node(1).body_cost, 1);
    EXPECT_EQ(g.edge(*g.find_edge(0, 1)).vectors, (std::vector<Vec2>{{1, 1}, {2, 1}}));
    EXPECT_EQ(g.edge(*g.find_edge(1, 0)).delta(), Vec2(0, -2));
}

TEST(Serialization, ReportsUsefulErrors) {
    EXPECT_THROW((void)parse_mldg("mldg g { edge A B { (0,0) }; }"), Error);   // unknown nodes
    EXPECT_THROW((void)parse_mldg("mldg g { node A; node A; }"), Error);       // duplicate
    EXPECT_THROW((void)parse_mldg("mldg g { node A; edge A A { }; }"), Error); // empty vectors
    EXPECT_THROW((void)parse_mldg("graph g { }"), Error);                      // wrong keyword
}

TEST(Serialization, SerializedTextMentionsCostOnlyWhenNonDefault) {
    Mldg g;
    g.add_node("A", 1);
    g.add_node("B", 7);
    g.add_edge(0, 1, {{1, 0}});
    const std::string text = serialize_mldg(g);
    EXPECT_EQ(text.find("node A cost"), std::string::npos);
    EXPECT_NE(text.find("node B cost 7"), std::string::npos);
}

}  // namespace
}  // namespace lf
