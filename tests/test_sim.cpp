// Tests for the multiprocessor cost model and the cache simulator.

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "exec/engines.hpp"
#include "exec/equivalence.hpp"
#include "fusion/llofra.hpp"
#include "ldg/legality.hpp"
#include "sim/metrics.hpp"
#include <set>
#include "ir/parser.hpp"
#include "sim/cache.hpp"
#include "sim/machine.hpp"
#include "support/math_util.hpp"
#include "transform/fused_program.hpp"
#include "workloads/gallery.hpp"
#include "workloads/sources.hpp"

namespace lf::sim {
namespace {

TEST(Machine, OriginalEstimateMatchesClosedForm) {
    const Mldg g = workloads::fig2_graph();
    const Domain dom{99, 49};
    const MachineConfig machine{8, 100};
    const ScheduleEstimate est = estimate_original(g, dom, machine);
    EXPECT_EQ(est.barriers, 4 * dom.rows());
    std::int64_t expect_time = 0;
    for (int v = 0; v < g.num_nodes(); ++v) {
        expect_time += dom.rows() * (ceil_div(dom.cols() * g.node(v).body_cost, 8) + 100);
    }
    EXPECT_EQ(est.total_time, expect_time);
}

TEST(Machine, FusedDoallEstimateHasOneBarrierPerActiveRow) {
    const Mldg g = workloads::fig2_graph();
    const FusionPlan plan = plan_fusion(g);
    const Domain dom{99, 49};
    const MachineConfig machine{8, 100};
    const ScheduleEstimate est = estimate_fused(g, plan, dom, machine);
    EXPECT_EQ(est.barriers, dom.n + 2);  // retimings spread the rows by one
    EXPECT_EQ(est.work, estimate_original(g, dom, machine).work);
}

TEST(Machine, FusionWinsAndTheWinGrowsWithBarrierCost) {
    const Mldg g = workloads::fig2_graph();
    const FusionPlan plan = plan_fusion(g);
    const Domain dom{199, 99};
    double last_speedup = 0.0;
    for (const std::int64_t sigma : {10, 100, 1000, 10000}) {
        const MachineConfig machine{8, sigma};
        const auto orig = estimate_original(g, dom, machine);
        const auto fused = estimate_fused(g, plan, dom, machine);
        const double speedup = fused.speedup_over(orig);
        EXPECT_GT(speedup, 1.0) << "sigma=" << sigma;
        EXPECT_GT(speedup, last_speedup) << "sigma=" << sigma;
        last_speedup = speedup;
    }
}

TEST(Machine, HyperplaneBarriersMatchWavefrontEngine) {
    const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
    const Mldg g = analysis::build_mldg(p);
    const FusionPlan plan = plan_fusion(g);
    ASSERT_EQ(plan.level, ParallelismLevel::Hyperplane);
    const Domain dom{15, 15};

    const MachineConfig machine{4, 10};
    const ScheduleEstimate est = estimate_fused(g, plan, dom, machine);

    const auto fp = transform::fuse_program(p, plan);
    exec::ArrayStore store(p, dom);
    const exec::ExecStats stats = exec::run_wavefront(fp, dom, store);
    EXPECT_EQ(est.barriers, stats.barriers);
}

TEST(Machine, GroupedEstimateInterpolatesBetweenOriginalAndFused) {
    const Mldg g = workloads::fig2_graph();
    const Domain dom{99, 49};
    const MachineConfig machine{8, 100};
    // One group per node, all DOALL == the original schedule.
    std::vector<std::vector<int>> singleton{{0}, {1}, {2}, {3}};
    const auto grouped = estimate_grouped(g, singleton, {true, true, true, true}, dom, machine);
    EXPECT_EQ(grouped.total_time, estimate_original(g, dom, machine).total_time);
    // Fewer groups -> fewer barriers -> faster (same work, all DOALL).
    std::vector<std::vector<int>> pairs{{0, 1}, {2, 3}};
    const auto paired = estimate_grouped(g, pairs, {true, true}, dom, machine);
    EXPECT_LT(paired.total_time, grouped.total_time);
    // Serial groups are charged undivided work.
    const auto serial = estimate_grouped(g, pairs, {false, true}, dom, machine);
    EXPECT_GT(serial.total_time, paired.total_time);
}

TEST(Cache, RepeatedAccessHitsAfterFirstMiss) {
    CacheSim cache(CacheConfig{8, 4, 2});
    EXPECT_TRUE(cache.access(100));
    EXPECT_FALSE(cache.access(100));
    EXPECT_FALSE(cache.access(103));  // same line (line 12: 96..103)
    EXPECT_TRUE(cache.access(104));   // next line
    EXPECT_EQ(cache.stats().accesses, 4);
    EXPECT_EQ(cache.stats().misses, 2);
}

TEST(Cache, SequentialSweepMissesOncePerLine) {
    CacheSim cache(CacheConfig{8, 64, 4});
    for (std::int64_t a = 0; a < 512; ++a) (void)cache.access(a);
    EXPECT_EQ(cache.stats().misses, 512 / 8);
}

TEST(Cache, LruEvictionWithinASet) {
    // 1 set, 2 ways, line 1: lines are addresses themselves.
    CacheSim cache(CacheConfig{1, 1, 2});
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(1));
    EXPECT_FALSE(cache.access(0));  // 0 now MRU, 1 LRU
    EXPECT_TRUE(cache.access(2));   // evicts 1
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(1));   // 1 was evicted
}

TEST(Cache, NegativeAddressesAreSupported) {
    // Halo cells can map below an array base in principle; the simulator
    // must floor rather than truncate.
    CacheSim cache(CacheConfig{8, 4, 2});
    EXPECT_TRUE(cache.access(-1));
    EXPECT_FALSE(cache.access(-2));  // same line [-8,-1]
    EXPECT_TRUE(cache.access(-9));
}

TEST(Cache, ResetClearsState) {
    CacheSim cache(CacheConfig{8, 4, 2});
    (void)cache.access(0);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0);
    EXPECT_TRUE(cache.access(0));
}

TEST(Cache, InnerAlignmentFusionImprovesLocalityOnFig2) {
    // Fusing with an inner-dimension (y-only) alignment keeps same-outer-
    // iteration producer/consumer pairs inside one row sweep: with a cache
    // smaller than a row, the original re-load of each just-written row
    // misses while the fused read hits a few elements behind the sweep.
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const Domain dom{30, 1500};
    const CacheConfig cfg{8, 16, 4};  // 512 elements << one 1501-element row

    exec::ArrayStore original_store(p, dom);
    original_store.enable_tracing();
    (void)exec::run_original(p, dom, original_store);

    // y-only alignment from the LLOFRA retiming of fig2 (Section 3.3):
    // r = {(0,0), (0,0), (0,-2), (0,-3)} -- a pure inner shift.
    const FusionPlan plan = [&] {
        const Mldg g = analysis::build_mldg(p);
        FusionPlan out;
        out.retiming = llofra(g);
        out.retimed = out.retiming.apply(g);
        out.body_order = *fused_body_order(out.retimed);
        out.level = ParallelismLevel::Hyperplane;  // rows stay serial
        return out;
    }();
    for (int v = 0; v < 4; ++v) ASSERT_EQ(plan.retiming.of(v).x, 0);

    const auto fp = transform::fuse_program(p, plan);
    exec::ArrayStore fused_store(p, dom);
    fused_store.enable_tracing();
    (void)exec::run_fused_rowwise(fp, dom, fused_store);

    // Same computation (golden equivalence)...
    EXPECT_FALSE(exec::first_difference(p, dom, original_store, fused_store).has_value());

    // ...same number of accesses, strictly fewer misses.
    CacheSim original_cache(cfg), fused_cache(cfg);
    original_cache.access_trace(original_store.trace());
    fused_cache.access_trace(fused_store.trace());
    EXPECT_EQ(original_cache.stats().accesses, fused_cache.stats().accesses);
    EXPECT_LT(fused_cache.stats().misses, original_cache.stats().misses);
}

TEST(Cache, PrivateCachesRouteByProcessorTag) {
    std::vector<exec::TraceEntry> trace;
    // Processor 0 and 1 touch the same line; privately each misses once.
    trace.push_back({0, 100, false, 0});
    trace.push_back({0, 100, false, 1});
    trace.push_back({0, 101, false, 0});
    trace.push_back({0, 101, false, 1});
    const auto stats = simulate_private_caches(trace, 2, CacheConfig{8, 4, 2});
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].accesses, 2);
    EXPECT_EQ(stats[0].misses, 1);
    EXPECT_EQ(stats[1].misses, 1);
    EXPECT_EQ(total_misses(stats), 2);
    // A shared cache would miss only once.
    CacheSim shared(CacheConfig{8, 4, 2});
    shared.access_trace(trace);
    EXPECT_EQ(shared.stats().misses, 1);
}

TEST(Cache, BlockedExecutionMatchesRowwiseAndTagsProcessors) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const Mldg g = analysis::build_mldg(p);
    const FusionPlan plan = plan_fusion(g);
    const auto fp = transform::fuse_program(p, plan);
    const Domain dom{12, 19};

    exec::ArrayStore rowwise(p, dom);
    exec::ArrayStore blocked(p, dom);
    blocked.enable_tracing();
    const auto s1 = exec::run_fused_rowwise(fp, dom, rowwise);
    const auto s2 = exec::run_fused_blocked(fp, dom, blocked, 4);
    EXPECT_EQ(s1.instances, s2.instances);
    EXPECT_EQ(s1.barriers, s2.barriers);
    EXPECT_FALSE(exec::first_difference(p, dom, rowwise, blocked).has_value());

    // Every trace entry carries a valid tag, and all 4 processors appear.
    std::set<int> seen;
    for (const auto& e : blocked.trace()) {
        ASSERT_GE(e.processor, 0);
        ASSERT_LT(e.processor, 4);
        seen.insert(e.processor);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Cache, FusionReducesPrivateCacheMissesOnFig2WhenBlockFits) {
    // The parallel-locality variant of the fig2 experiment: each processor's
    // private cache sees only its block; y-aligned reuse stays in-block
    // except at boundaries. Capacity matters: the fused block's working set
    // is ~|V|x one loop's, so the block (100 elements here) must fit the
    // 256-element cache -- bench/fig_locality_cache shows the crossover.
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const Mldg g = analysis::build_mldg(p);
    const Domain dom{20, 800};
    const CacheConfig cfg{8, 8, 4};  // 256 elements per processor
    const int P = 8;

    exec::ArrayStore orig(p, dom);
    orig.enable_tracing();
    (void)exec::run_original_blocked(p, dom, orig, P);

    // y-only aligned fusion (LLOFRA is a pure inner shift for fig2).
    FusionPlan plan;
    plan.retiming = llofra(g);
    plan.retimed = plan.retiming.apply(g);
    plan.body_order = *fused_body_order(plan.retimed);
    plan.level = ParallelismLevel::Hyperplane;
    const auto fp = transform::fuse_program(p, plan);
    exec::ArrayStore fused(p, dom);
    fused.enable_tracing();
    (void)exec::run_fused_blocked(fp, dom, fused, P);

    const auto misses_orig = total_misses(simulate_private_caches(orig.trace(), P, cfg));
    const auto misses_fused = total_misses(simulate_private_caches(fused.trace(), P, cfg));
    EXPECT_LT(misses_fused, misses_orig);
}

TEST(Metrics, ForwardingReuseCountsZeroRetimedFlowDependences) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const auto info = analysis::analyze_dependences(p);
    const Domain dom{99, 99};

    // Identity retiming: nothing forwards across loops.
    const ForwardingReuse none = forwarding_reuse(p, info, Retiming(4), dom);
    EXPECT_EQ(none.forwardable_dependences, 0);
    EXPECT_EQ(none.total_loads, 8 * dom.points());

    // LLOFRA retiming lands B->C (0,-2)->(0,0) and C->D (0,-1)->(0,0):
    // the b[i][j+2] read of C and the c read of D become register values.
    const ForwardingReuse fused = forwarding_reuse(p, info, llofra(info.graph), dom);
    EXPECT_EQ(fused.forwardable_dependences, 2);
    EXPECT_EQ(fused.forwardable_loads, 2 * dom.points());
    EXPECT_GT(fused.fraction(), 0.2);
}

}  // namespace
}  // namespace lf::sim
