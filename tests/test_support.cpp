// Unit tests for src/support: Vec2 lexicographic arithmetic, floor/ceil
// division, deterministic RNG and diagnostics.

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "support/diagnostics.hpp"
#include "support/math_util.hpp"
#include "support/rng.hpp"
#include "support/lexvec.hpp"

namespace lf {
namespace {

TEST(Vec2, LexicographicOrderComparesFirstCoordinateFirst) {
    EXPECT_LT(Vec2(0, 100), Vec2(1, -100));
    EXPECT_LT(Vec2(1, -5), Vec2(1, -1));
    EXPECT_GT(Vec2(2, 1), Vec2(1, 9));
    EXPECT_EQ(Vec2(3, 4), Vec2(3, 4));
    EXPECT_LE(Vec2(0, 0), Vec2(0, 0));
}

TEST(Vec2, PaperExampleOrdering) {
    // Section 2.1: (0,-2) is the minimal vector of {(0,-2),(0,1)} and
    // (1,1) the minimal of {(1,1),(2,1)}.
    EXPECT_LT(Vec2(0, -2), Vec2(0, 1));
    EXPECT_LT(Vec2(1, 1), Vec2(2, 1));
}

TEST(Vec2, ArithmeticAndDot) {
    const Vec2 a{2, -3};
    const Vec2 b{-1, 5};
    EXPECT_EQ(a + b, Vec2(1, 2));
    EXPECT_EQ(a - b, Vec2(3, -8));
    EXPECT_EQ(-a, Vec2(-2, 3));
    EXPECT_EQ(a * 3, Vec2(6, -9));
    EXPECT_EQ(a.dot(b), 2 * -1 + -3 * 5);
    EXPECT_TRUE(Vec2(0, 0).is_zero());
    EXPECT_FALSE(Vec2(0, 1).is_zero());
}

TEST(Vec2, TranslationInvarianceOfOrder) {
    // The property that makes lexicographic Bellman-Ford correct.
    const Vec2 u{0, 3}, v{1, -7}, w{-2, 11};
    ASSERT_LT(u, v);
    EXPECT_LT(u + w, v + w);
}

TEST(Vec2, StreamAndStr) {
    EXPECT_EQ(Vec2(1, -2).str(), "(1,-2)");
    std::ostringstream os;
    os << kVecInfinity;
    EXPECT_EQ(os.str(), "(inf,inf)");
}

TEST(Vec2, InfinitySentinel) {
    EXPECT_TRUE(is_infinite(kVecInfinity));
    EXPECT_FALSE(is_infinite(Vec2(1000000, -1000000)));
    // Adding a realistic edge weight must not wrap the sentinel around.
    EXPECT_TRUE(is_infinite(kVecInfinity + Vec2(-100000, -100000)));
}

TEST(Vec2, Hashable) {
    std::unordered_set<Vec2> set{{0, 0}, {0, 1}, {1, 0}};
    EXPECT_EQ(set.size(), 3u);
    EXPECT_TRUE(set.contains(Vec2(0, 1)));
    EXPECT_FALSE(set.contains(Vec2(1, 1)));
}

TEST(MathUtil, FloorDivRoundsTowardNegativeInfinity) {
    EXPECT_EQ(floor_div(7, 2), 3);
    EXPECT_EQ(floor_div(-7, 2), -4);
    EXPECT_EQ(floor_div(7, -2), -4);
    EXPECT_EQ(floor_div(-7, -2), 3);
    EXPECT_EQ(floor_div(6, 3), 2);
    EXPECT_EQ(floor_div(-6, 3), -2);
    EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(MathUtil, CeilDiv) {
    EXPECT_EQ(ceil_div(7, 2), 4);
    EXPECT_EQ(ceil_div(-7, 2), -3);
    EXPECT_EQ(ceil_div(6, 3), 2);
    EXPECT_EQ(ceil_div(1, 64), 1);
    EXPECT_EQ(ceil_div(0, 8), 0);
}

TEST(MathUtil, Lemma43ScheduleFormulaUsesFloor) {
    // s[1] = floor(-d.y / d.x) + 1 must satisfy s[1]*d.x + d.y > 0 even for
    // negative and non-divisible cases.
    for (std::int64_t dx = 1; dx <= 4; ++dx) {
        for (std::int64_t dy = -9; dy <= 9; ++dy) {
            const std::int64_t s1 = floor_div(-dy, dx) + 1;
            EXPECT_GT(s1 * dx + dy, 0) << "dx=" << dx << " dy=" << dy;
            // Minimality: s1 - 1 must NOT satisfy the inequality.
            EXPECT_LE((s1 - 1) * dx + dy, 0) << "dx=" << dx << " dy=" << dy;
        }
    }
}

TEST(Rng, DeterministicForEqualSeeds) {
    Rng a(42), b(42);
    for (int k = 0; k < 100; ++k) {
        EXPECT_EQ(a.uniform(-50, 50), b.uniform(-50, 50));
    }
}

TEST(Rng, UniformRespectsBounds) {
    Rng rng(7);
    for (int k = 0; k < 1000; ++k) {
        const auto v = rng.uniform(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Diagnostics, CheckThrowsWithMessage) {
    EXPECT_NO_THROW(check(true, "fine"));
    try {
        check(false, "boom");
        FAIL() << "expected lf::Error";
    } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

}  // namespace
}  // namespace lf
