// The concurrent fusion service end to end: worker pool, deadlines,
// retry-with-escalation, per-class circuit breaking, the verified-plan
// admission gate, checkpoint/resume, and the JSON run report.
//
// The central contract, exercised from every angle: a job ends Verified
// only after independent certification AND (for executable jobs) a
// differential replay agree; everything else ends Quarantined with a
// non-empty StageReport trace; and no workload -- hostile, fault-injected
// or budget-starved -- ever takes down the batch.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "fusion/certify.hpp"
#include "fusion/driver.hpp"
#include "ldg/serialization.hpp"
#include "support/faultpoint.hpp"
#include "svc/gate.hpp"
#include "svc/manifest.hpp"
#include "svc/report.hpp"
#include "svc/service.hpp"
#include "workloads/gallery.hpp"
#include "workloads/sources.hpp"

namespace lf::svc {
namespace {

class SvcTest : public ::testing::Test {
  protected:
    void SetUp() override { faultpoint::reset(); }
    void TearDown() override { faultpoint::reset(); }

    static std::string temp_path(const std::string& name) {
        return ::testing::TempDir() + name;
    }
};

const JobRecord* find_job(const RunReport& report, const std::string& id) {
    for (const auto& j : report.jobs) {
        if (j.id == id) return &j;
    }
    return nullptr;
}

/// The acceptance invariant: terminal state, and quarantines carry traces.
void expect_terminal(const RunReport& report, const std::string& context) {
    for (const auto& job : report.jobs) {
        EXPECT_TRUE(job.status == JobStatus::Verified || job.status == JobStatus::Quarantined)
            << context << ": job " << job.id << " ended " << to_string(job.status);
        if (job.status == JobStatus::Quarantined) {
            EXPECT_FALSE(job.final_trace().empty())
                << context << ": job " << job.id << " quarantined without a trace";
            EXPECT_FALSE(job.quarantine_reason.empty()) << context << ": job " << job.id;
        }
    }
}

// ---------------------------------------------------------------------------
// Healthy path.
// ---------------------------------------------------------------------------

TEST_F(SvcTest, FullGalleryVerifiesCleanly) {
    ServiceConfig config;
    config.workers = 4;
    FusionService service(config);
    const RunReport report = service.run(full_gallery_jobs());

    ASSERT_EQ(report.jobs.size(), 9u);
    const RunCounts counts = report.counts();
    EXPECT_EQ(counts.verified, 9);
    EXPECT_EQ(counts.quarantined, 0);
    EXPECT_EQ(counts.short_circuited, 0);
    for (const auto& job : report.jobs) {
        EXPECT_EQ(job.status, JobStatus::Verified) << job.id;
        EXPECT_TRUE(job.certified) << job.id;
        EXPECT_EQ(job.attempts.size(), 1u) << job.id;
        EXPECT_GT(job.total_budget_spent, 0u) << job.id;
        EXPECT_FALSE(job.algorithm.empty()) << job.id;
    }
    // fig14 is graph-only: certified, replay skipped. Every other job
    // replays differentially.
    const JobRecord* fig14 = find_job(report, "fig14");
    ASSERT_NE(fig14, nullptr);
    EXPECT_EQ(fig14->replay, ReplayOutcome::Skipped);
    for (const auto& job : report.jobs) {
        if (job.id != "fig14") {
            EXPECT_EQ(job.replay, ReplayOutcome::Ok) << job.id;
        }
    }
    // Clean run: every breaker closed, nothing tripped.
    for (const auto& b : report.breakers) {
        EXPECT_EQ(b.state, BreakerState::Closed) << b.klass;
        EXPECT_EQ(b.trips, 0u) << b.klass;
    }
}

// ---------------------------------------------------------------------------
// Retry with escalated budgets.
// ---------------------------------------------------------------------------

TEST_F(SvcTest, StarvedBudgetEscalatesUntilVerified) {
    // fig14 is schedulable but not program-model legal, so the
    // loop-distribution fallback cannot rescue it: a starved budget is a
    // genuine ResourceExhausted failure, and only escalation fixes it.
    std::vector<JobSpec> jobs;
    for (const auto& w : workloads::paper_workloads()) {
        if (w.id == "fig14") {
            JobSpec job;
            job.id = w.id;
            job.klass = "paper";
            job.graph = w.graph;
            jobs.push_back(std::move(job));
        }
    }
    ASSERT_EQ(jobs.size(), 1u);

    ServiceConfig config;
    config.workers = 1;
    config.retry.max_attempts = 5;
    config.retry.initial_steps = 2;  // hopeless: validation alone needs more
    config.retry.escalation = 32;
    FusionService service(config);
    const RunReport report = service.run(jobs);

    ASSERT_EQ(report.jobs.size(), 1u);
    const JobRecord& job = report.jobs[0];
    EXPECT_EQ(job.status, JobStatus::Verified) << job.quarantine_reason;
    ASSERT_GE(job.attempts.size(), 2u);
    EXPECT_EQ(job.attempts.front().code, StatusCode::ResourceExhausted);
    // Budgets escalate geometrically: 2, 64, 2048, ...
    for (std::size_t k = 0; k < job.attempts.size(); ++k) {
        std::uint64_t expected = 2;
        for (std::size_t e = 0; e < k; ++e) expected *= 32;
        EXPECT_EQ(job.attempts[k].max_steps, expected) << "attempt " << k;
    }
    EXPECT_EQ(job.attempts.back().code, StatusCode::Ok);
}

TEST_F(SvcTest, PersistentFaultExhaustsAttemptsAndQuarantines) {
    faultpoint::arm("svc.plan");
    ServiceConfig config;
    config.workers = 1;
    config.retry.max_attempts = 3;
    config.breaker.failure_threshold = 0;  // isolate the retry logic
    FusionService service(config);
    const RunReport report = service.run(gallery_jobs());

    for (const auto& job : report.jobs) {
        EXPECT_EQ(job.status, JobStatus::Quarantined) << job.id;
        EXPECT_EQ(job.attempts.size(), 3u) << job.id;  // capped attempts
        for (const auto& att : job.attempts) EXPECT_EQ(att.code, StatusCode::Internal);
        EXPECT_FALSE(job.final_trace().empty()) << job.id;
    }
    EXPECT_GE(faultpoint::hits("svc.plan"), 15u);  // 5 jobs x 3 attempts
}

TEST_F(SvcTest, ExpiredDeadlineForbidsRetries) {
    // A zero deadline expires before the first consume: the attempt fails
    // ResourceExhausted and -- the deadline being a *job* budget -- no
    // retry is allowed, however many attempts the policy grants.
    std::vector<JobSpec> jobs;
    jobs.push_back(job_from_mldg_text("fig14", serialize_mldg(workloads::fig14_graph())));

    ServiceConfig config;
    config.workers = 1;
    config.retry.max_attempts = 5;
    config.retry.deadline_ms = 0;
    FusionService service(config);
    const RunReport report = service.run(jobs);

    ASSERT_EQ(report.jobs.size(), 1u);
    const JobRecord& job = report.jobs[0];
    EXPECT_EQ(job.status, JobStatus::Quarantined);
    EXPECT_EQ(job.attempts.size(), 1u);
    EXPECT_EQ(job.attempts.front().code, StatusCode::ResourceExhausted);
}

// ---------------------------------------------------------------------------
// Admission gate.
// ---------------------------------------------------------------------------

TEST_F(SvcTest, ReplayMismatchQuarantinesWithoutRetry) {
    faultpoint::arm("svc.verify.replay");
    ServiceConfig config;
    config.workers = 1;
    FusionService service(config);
    const RunReport report = service.run(gallery_jobs());

    expect_terminal(report, "replay-fault");
    for (const auto& job : report.jobs) {
        if (job.id == "fig14") {
            // Graph-only: no replay to corrupt.
            EXPECT_EQ(job.status, JobStatus::Verified);
            EXPECT_EQ(job.replay, ReplayOutcome::Skipped);
            continue;
        }
        EXPECT_EQ(job.status, JobStatus::Quarantined) << job.id;
        EXPECT_EQ(job.replay, ReplayOutcome::Mismatch) << job.id;
        // A mismatch is a wrong plan, not a transient: exactly one attempt.
        EXPECT_EQ(job.attempts.size(), 1u) << job.id;
        EXPECT_TRUE(job.certified) << job.id;  // certification passed first
        const auto& trace = job.final_trace();
        const bool has_replay_stage =
            std::any_of(trace.begin(), trace.end(), [](const StageReport& s) {
                return s.stage == "admit.replay" && s.code != StatusCode::Ok;
            });
        EXPECT_TRUE(has_replay_stage) << job.id;
    }
}

TEST_F(SvcTest, CertifyFaultQuarantinesEveryJob) {
    faultpoint::arm("svc.verify.certify");
    ServiceConfig config;
    config.workers = 2;
    FusionService service(config);
    const RunReport report = service.run(gallery_jobs());

    expect_terminal(report, "certify-fault");
    for (const auto& job : report.jobs) {
        EXPECT_EQ(job.status, JobStatus::Quarantined) << job.id;
        EXPECT_FALSE(job.certified) << job.id;
        EXPECT_NE(job.quarantine_reason.find("certification failed"), std::string::npos)
            << job.id << ": " << job.quarantine_reason;
    }
}

TEST_F(SvcTest, GateAdmitsDistributionFallbackViaDistributedReplay) {
    // The gate's replay path for unfused plans executes the *distributed*
    // program -- fuse_program would (rightly) reject the plan.
    JobSpec job = job_from_dsl_text("fig2", std::string(workloads::sources::kFig2), "paper");

    TryPlanOptions opts;
    opts.distribution_only = true;
    const auto result = try_plan_fusion(job.graph, opts);
    ASSERT_TRUE(result.ok()) << result.status().str();
    ASSERT_EQ(result->algorithm, AlgorithmUsed::DistributionFallback);

    // certify_plan understands the unfused contract (U1-U4)...
    const PlanCertificate cert = certify_plan(job.graph, *result);
    EXPECT_TRUE(cert.valid) << (cert.violations.empty() ? "" : cert.violations.front());

    // ...and the full gate admits it.
    const GateResult gate = admit_plan(job, *result);
    EXPECT_TRUE(gate.admitted) << gate.detail;
    EXPECT_TRUE(gate.certified);
    EXPECT_EQ(gate.replay, ReplayOutcome::Ok);
}

TEST_F(SvcTest, GateRejectsTamperedPlan) {
    JobSpec job = job_from_dsl_text("fig2", std::string(workloads::sources::kFig2), "paper");
    auto result = try_plan_fusion(job.graph);
    ASSERT_TRUE(result.ok());
    FusionPlan plan = std::move(result).value();
    plan.retiming.of(1) = Vec2{-7, 3};  // tamper: stale retimed graph

    const GateResult gate = admit_plan(job, plan);
    EXPECT_FALSE(gate.admitted);
    EXPECT_FALSE(gate.certified);
    EXPECT_FALSE(gate.retryable);  // wrong plan, not transient
    EXPECT_NE(gate.detail.find("certification failed"), std::string::npos) << gate.detail;
}

// ---------------------------------------------------------------------------
// Circuit breaker.
// ---------------------------------------------------------------------------

TEST_F(SvcTest, BreakerOpensAndShortCircuitsToFallback) {
    // codegen.fuse makes every *fused* replay abort (retryable), while the
    // distribution fallback replays the distributed program and stays
    // healthy: exactly the poisoned-class scenario the breaker exists for.
    faultpoint::arm("codegen.fuse");
    std::vector<JobSpec> jobs;
    for (int k = 0; k < 6; ++k) {
        jobs.push_back(job_from_dsl_text("fig2-" + std::to_string(k),
                                         std::string(workloads::sources::kFig2), "poison"));
    }

    ServiceConfig config;
    config.workers = 1;  // deterministic breaker interleaving
    config.retry.max_attempts = 3;
    config.breaker.failure_threshold = 2;
    config.breaker.probe_interval = 100;  // no probes within this test
    FusionService service(config);
    const RunReport report = service.run(jobs);

    expect_terminal(report, "breaker");
    // Job 0: two full-ladder attempts fail (tripping the breaker at
    // threshold 2), the third is short-circuited to the fallback and
    // verifies.
    const JobRecord& first = report.jobs[0];
    EXPECT_EQ(first.status, JobStatus::Verified);
    ASSERT_EQ(first.attempts.size(), 3u);
    EXPECT_FALSE(first.attempts[0].short_circuited);
    EXPECT_FALSE(first.attempts[1].short_circuited);
    EXPECT_TRUE(first.attempts[2].short_circuited);
    EXPECT_EQ(first.algorithm, to_string(AlgorithmUsed::DistributionFallback));
    // Every later job short-circuits immediately.
    for (std::size_t k = 1; k < report.jobs.size(); ++k) {
        const JobRecord& job = report.jobs[k];
        EXPECT_EQ(job.status, JobStatus::Verified) << job.id;
        ASSERT_EQ(job.attempts.size(), 1u) << job.id;
        EXPECT_TRUE(job.attempts[0].short_circuited) << job.id;
        EXPECT_EQ(job.level, to_string(ParallelismLevel::Unfused)) << job.id;
    }

    ASSERT_EQ(report.breakers.size(), 1u);
    const BreakerSnapshot& breaker = report.breakers[0];
    EXPECT_EQ(breaker.klass, "poison");
    EXPECT_EQ(breaker.state, BreakerState::Open);
    EXPECT_EQ(breaker.trips, 1u);
    EXPECT_EQ(breaker.short_circuited, 6u);  // job0 attempt 3 + jobs 1-5
}

TEST_F(SvcTest, BreakerProbeClosesAfterRecovery) {
    faultpoint::arm("codegen.fuse");
    std::vector<JobSpec> jobs;
    for (int k = 0; k < 2; ++k) {
        jobs.push_back(job_from_dsl_text("fig2-" + std::to_string(k),
                                         std::string(workloads::sources::kFig2), "poison"));
    }

    ServiceConfig config;
    config.workers = 1;
    config.retry.max_attempts = 2;
    config.breaker.failure_threshold = 2;
    config.breaker.probe_interval = 1;  // every open admission is a probe
    FusionService service(config);

    const RunReport sick = service.run(jobs);
    // With every admission probing at full strength, the poisoned class
    // keeps failing: both jobs quarantine.
    for (const auto& job : sick.jobs) {
        EXPECT_EQ(job.status, JobStatus::Quarantined) << job.id;
    }
    ASSERT_EQ(sick.breakers.size(), 1u);
    EXPECT_NE(sick.breakers[0].state, BreakerState::Closed);

    // The fault clears; the service (breaker state persists across runs of
    // one service instance) probes, verifies, and closes the breaker.
    faultpoint::reset();
    const RunReport healthy = service.run(jobs);
    for (const auto& job : healthy.jobs) {
        EXPECT_EQ(job.status, JobStatus::Verified) << job.id;
    }
    ASSERT_EQ(healthy.breakers.size(), 1u);
    EXPECT_EQ(healthy.breakers[0].state, BreakerState::Closed);
    EXPECT_EQ(healthy.breakers[0].consecutive_failures, 0);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume.
// ---------------------------------------------------------------------------

TEST_F(SvcTest, CheckpointResumeSkipsVerifiedJobs) {
    const std::string path = temp_path("svc_resume.ckpt");
    std::remove(path.c_str());

    ServiceConfig config;
    config.workers = 2;
    config.checkpoint_path = path;

    {
        FusionService service(config);
        const RunReport report = service.run(full_gallery_jobs());
        EXPECT_EQ(report.counts().verified, 9);
        EXPECT_EQ(report.counts().from_checkpoint, 0);
        EXPECT_EQ(report.checkpoint_failures, 0);
    }
    EXPECT_EQ(load_checkpoint(path).size(), 9u);

    // A second run (fresh service, same manifest) redoes nothing.
    {
        FusionService service(config);
        const RunReport report = service.run(full_gallery_jobs());
        EXPECT_EQ(report.counts().verified, 9);
        EXPECT_EQ(report.counts().from_checkpoint, 9);
        for (const auto& job : report.jobs) {
            EXPECT_TRUE(job.from_checkpoint) << job.id;
            EXPECT_TRUE(job.attempts.empty()) << job.id;  // no work redone
            EXPECT_FALSE(job.algorithm.empty()) << job.id;  // rung restored
        }
    }
    std::remove(path.c_str());
}

TEST_F(SvcTest, CheckpointToleratesCorruptLinesAndQuarantines) {
    const std::string path = temp_path("svc_corrupt.ckpt");
    std::remove(path.c_str());
    {
        std::ofstream out(path);
        out << "lfsvc-checkpoint v1\n"
            << "garbage line without tabs\n"
            << "fig8\tverified\t1\tAlgorithm 3 (acyclic)\n"
            << "fig2\tquarantined\t3\t\n"          // quarantined: must be redone
            << "fig2\tverified\tnot-a-number\tx\n"  // malformed count: skipped
            << "truncated\tverified\n";             // missing fields: skipped
    }
    const auto entries = load_checkpoint(path);
    // Only the two well-formed terminal records survive parsing.
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].id, "fig8");
    EXPECT_EQ(entries[0].status, JobStatus::Verified);
    EXPECT_EQ(entries[1].id, "fig2");
    EXPECT_EQ(entries[1].status, JobStatus::Quarantined);

    ServiceConfig config;
    config.workers = 1;
    config.checkpoint_path = path;
    FusionService service(config);
    const RunReport report = service.run(gallery_jobs());
    const JobRecord* fig8 = find_job(report, "fig8");
    const JobRecord* fig2 = find_job(report, "fig2");
    ASSERT_NE(fig8, nullptr);
    ASSERT_NE(fig2, nullptr);
    EXPECT_TRUE(fig8->from_checkpoint);
    EXPECT_FALSE(fig2->from_checkpoint);  // quarantined records are redone
    EXPECT_EQ(fig2->status, JobStatus::Verified);
    std::remove(path.c_str());
}

TEST_F(SvcTest, CheckpointMalformedLineCountSurfacesInTheReport) {
    const std::string path = temp_path("svc_malformed_count.ckpt");
    std::remove(path.c_str());
    {
        std::ofstream out(path);
        out << "lfsvc-checkpoint v1\n"
            << "no tabs at all\n"                    // truncated fields
            << "fig8\tverified\t1\tAlgorithm 3 (acyclic)\n"
            << "fig2\texploded\t1\tx\n"              // unknown terminal state
            << "fig2\tverified\tNaN\tx\n"            // non-numeric attempts
            << "torn\tverified";                     // killed writer's tail
    }
    int malformed = -1;
    const auto entries = load_checkpoint(path, &malformed);
    EXPECT_EQ(entries.size(), 1u);
    EXPECT_EQ(malformed, 4);

    ServiceConfig config;
    config.workers = 1;
    config.checkpoint_path = path;
    FusionService service(config);
    const RunReport report = service.run(gallery_jobs());
    EXPECT_EQ(report.checkpoint_malformed, 4);
    const std::string json = report_to_json(report, false);
    EXPECT_NE(json.find("\"checkpoint_malformed\": 4"), std::string::npos);

    // The run appended one well-formed record per job (atomically, so no
    // new damage), and the pre-existing damaged lines are preserved as
    // evidence -- still skipped, still counted, never silently dropped.
    int after = -1;
    const auto resumed = load_checkpoint(path, &after);
    EXPECT_EQ(resumed.size(), report.jobs.size());
    EXPECT_EQ(after, 4);
    std::remove(path.c_str());
}

TEST_F(SvcTest, CheckpointAppendTerminatesATornTailAtomically) {
    const std::string path = temp_path("svc_torn_tail.ckpt");
    std::remove(path.c_str());
    {
        std::ofstream out(path);
        out << "lfsvc-checkpoint v1\n"
            << "fig8\tverified\t1\tAlgorithm 3 (acyclic)\n"
            << "fig2\tveri";  // the byte stream a kill -9 mid-write leaves
    }
    JobRecord rec;
    rec.id = "jacobi";
    rec.status = JobStatus::Verified;
    rec.algorithm = "Algorithm 3 (acyclic)";
    ASSERT_TRUE(append_checkpoint(path, rec));

    int malformed = -1;
    const auto entries = load_checkpoint(path, &malformed);
    ASSERT_EQ(entries.size(), 2u);  // fig8 + jacobi; the torn line is skipped
    EXPECT_EQ(entries[0].id, "fig8");
    EXPECT_EQ(entries[1].id, "jacobi");
    EXPECT_EQ(malformed, 1) << "the torn tail is counted, not silently eaten";
    // No temp droppings from the atomic rewrite.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp." + std::to_string(::getpid())));
    std::remove(path.c_str());
}

TEST_F(SvcTest, CheckpointWriteFaultDegradesToWarning) {
    faultpoint::arm("svc.checkpoint");
    const std::string path = temp_path("svc_faulty.ckpt");
    std::remove(path.c_str());

    ServiceConfig config;
    config.workers = 1;
    config.checkpoint_path = path;
    FusionService service(config);
    const RunReport report = service.run(gallery_jobs());

    // Jobs still verify; only the manifest is lost.
    EXPECT_EQ(report.counts().verified, 5);
    EXPECT_EQ(report.checkpoint_failures, 5);
    EXPECT_TRUE(load_checkpoint(path).empty());
    EXPECT_EQ(faultpoint::hits("svc.checkpoint"), 5u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Report determinism and structure.
// ---------------------------------------------------------------------------

TEST_F(SvcTest, ReportIsDeterministicModuloTimings) {
    // Same manifest, same config, same armed fault, single worker: the
    // timing-stripped JSON must match byte for byte -- including breaker
    // activity and retry traces.
    faultpoint::arm("codegen.fuse");
    auto run_once = [] {
        ServiceConfig config;
        config.workers = 1;
        config.retry.max_attempts = 2;
        config.breaker.failure_threshold = 2;
        FusionService service(config);
        return report_to_json(service.run(full_gallery_jobs()), /*include_timings=*/false);
    };
    const std::string a = run_once();
    const std::string b = run_once();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.find("wall_ms"), std::string::npos);
}

TEST_F(SvcTest, ReportCarriesRungBudgetAndBreakerFields) {
    ServiceConfig config;
    config.workers = 1;
    FusionService service(config);
    const std::string json = report_to_json(service.run(gallery_jobs()));
    for (const char* needle :
         {"\"service\"", "\"counts\"", "\"jobs\"", "\"breakers\"", "\"status\": \"verified\"",
          "\"algorithm\"", "\"budget_spent\"", "\"attempt_log\"", "\"stages\"",
          "\"state\": \"closed\"", "\"replay\": \"ok\"", "\"replay\": \"skipped\"",
          "\"wall_ms\""}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
}

TEST_F(SvcTest, DuplicateJobIdsAreRejectedUpFront) {
    std::vector<JobSpec> jobs = gallery_jobs();
    jobs.push_back(jobs.front());
    FusionService service;
    EXPECT_THROW((void)service.run(jobs), Error);
}

TEST_F(SvcTest, ManifestValidatesIdsAndSources) {
    EXPECT_THROW((void)job_from_dsl_text("has space", std::string(workloads::sources::kFig2)),
                 Error);
    EXPECT_THROW((void)job_from_dsl_text("", std::string(workloads::sources::kFig2)), Error);
    EXPECT_THROW((void)job_from_dsl_text("bad", "program broken {"), Error);

    // Graph-only round trip through the serialization front end.
    const JobSpec job =
        job_from_mldg_text("fig14", serialize_mldg(workloads::fig14_graph(), "fig14"));
    EXPECT_EQ(job.graph.num_nodes(), workloads::fig14_graph().num_nodes());
    EXPECT_TRUE(job.dsl_source.empty());
}

// ---------------------------------------------------------------------------
// Depth-d jobs through the full pipeline.
// ---------------------------------------------------------------------------

TEST_F(SvcTest, DepthThreeJobPlansCertifiesAndCaches) {
    // A depth-3 source job runs the whole pipeline -- plan_fusion_nd,
    // N-D certification, differential replay -- and a structurally
    // identical twin is served from the plan cache.
    ServiceConfig config;
    config.workers = 1;  // deterministic processing order
    FusionService service(config);

    std::vector<JobSpec> jobs = nd_jobs();
    ASSERT_EQ(jobs.size(), 2u);
    JobSpec twin = jobs[0];
    twin.id = "volume3d-twin";
    jobs.push_back(std::move(twin));

    const RunReport report = service.run(jobs);
    expect_terminal(report, "nd");
    ASSERT_EQ(report.jobs.size(), 3u);

    const JobRecord* volume = find_job(report, "volume3d");
    ASSERT_NE(volume, nullptr);
    EXPECT_EQ(volume->status, JobStatus::Verified);
    EXPECT_EQ(volume->depth, 3);
    EXPECT_TRUE(volume->certified);
    EXPECT_EQ(volume->replay, ReplayOutcome::Ok);
    EXPECT_EQ(volume->cache, CacheOutcome::Miss);

    const JobRecord* hyper = find_job(report, "hyper4d");
    ASSERT_NE(hyper, nullptr);
    EXPECT_EQ(hyper->status, JobStatus::Verified);
    EXPECT_EQ(hyper->depth, 4);

    // The twin hits the cache: same plan, certified again, replay skipped.
    const JobRecord* cached = find_job(report, "volume3d-twin");
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(cached->status, JobStatus::Verified);
    EXPECT_EQ(cached->cache, CacheOutcome::Hit);
    EXPECT_EQ(cached->replay, ReplayOutcome::Skipped);
    EXPECT_EQ(cached->algorithm, volume->algorithm);
    EXPECT_TRUE(cached->certified);

    // Depth is visible per job in the JSON run report.
    const std::string json = report_to_json(report, /*include_timings=*/false);
    EXPECT_NE(json.find("\"depth\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"depth\": 4"), std::string::npos);
}

TEST_F(SvcTest, DslManifestAcceptsAnyDepth) {
    // job_from_dsl_text routes through the unified front end: a depth-3
    // source fills the N-D job fields, a 2-D source the classic ones.
    const JobSpec nd =
        job_from_dsl_text("vol", std::string(workloads::sources::kVolume3d));
    EXPECT_EQ(nd.depth, 3);
    EXPECT_EQ(nd.graph_nd.num_nodes(), 3);
    EXPECT_EQ(nd.extents_nd.size(), 3u);
    EXPECT_EQ(nd.graph.num_nodes(), 0);

    const JobSpec flat = job_from_dsl_text("fig2", std::string(workloads::sources::kFig2));
    EXPECT_EQ(flat.depth, 2);
    EXPECT_EQ(flat.graph.num_nodes(), 4);
    EXPECT_TRUE(flat.extents_nd.empty());
}

// ---------------------------------------------------------------------------
// The acceptance drill: every compiled-in fault point, in turn.
// ---------------------------------------------------------------------------

TEST_F(SvcTest, StormOverEveryFaultPointStaysTerminal) {
    for (const std::string& point : faultpoint::known_points()) {
        faultpoint::reset();
        faultpoint::arm(point);
        ServiceConfig config;
        config.workers = 2;
        config.retry.initial_steps = 8192;
        FusionService service(config);
        std::vector<JobSpec> jobs = full_gallery_jobs();
        std::vector<JobSpec> nd = nd_jobs();  // depth-d jobs ride the drill too
        jobs.insert(jobs.end(), std::make_move_iterator(nd.begin()),
                    std::make_move_iterator(nd.end()));
        const RunReport report = service.run(jobs);
        ASSERT_EQ(report.jobs.size(), 11u) << point;
        expect_terminal(report, "storm:" + point);
    }
}

}  // namespace
}  // namespace lf::svc
