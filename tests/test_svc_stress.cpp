// Multi-threaded stress over the fusion pipeline and the fusion service.
//
// The contract under test is narrow but absolute: with arbitrary fault
// points armed and starved budgets, concurrent callers of try_plan_fusion
// never see an exception, a data race, or a non-Status failure -- and a
// concurrent FusionService run always drives every job to a terminal
// state. Run under -DLF_SANITIZE=address,undefined (and thread sanitizer
// builds) to turn latent races into hard failures.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fusion/driver.hpp"
#include "support/faultpoint.hpp"
#include "svc/manifest.hpp"
#include "svc/service.hpp"
#include "workloads/gallery.hpp"

namespace lf::svc {
namespace {

/// Deterministic xorshift so the stress mix is reproducible run to run
/// (no std::random_device: failures must replay).
struct Rng {
    std::uint64_t state;
    explicit Rng(std::uint64_t seed) : state(seed * 2654435769u + 1) {}
    std::uint64_t next() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }
    std::uint64_t below(std::uint64_t n) { return next() % n; }
};

class SvcStressTest : public ::testing::Test {
  protected:
    void SetUp() override { faultpoint::reset(); }
    void TearDown() override { faultpoint::reset(); }
};

TEST_F(SvcStressTest, ConcurrentTryPlanFusionUnderRandomFaults) {
    const std::vector<std::string> points = faultpoint::known_points();
    const auto& gallery = workloads::paper_workloads();
    constexpr int kThreads = 8;
    constexpr int kItersPerThread = 32;

    std::atomic<int> failures{0};
    std::atomic<int> planned{0};
    auto hammer = [&](int tid) {
        Rng rng(static_cast<std::uint64_t>(tid) + 17);
        for (int iter = 0; iter < kItersPerThread; ++iter) {
            // Arm/disarm a random point while other threads are mid-ladder:
            // the registry and the ladder must both tolerate the churn.
            const std::string& point = points[rng.below(points.size())];
            faultpoint::arm(point);
            const workloads::Workload& w = gallery[rng.below(gallery.size())];
            TryPlanOptions opts;
            // 0 steps is kUnlimited-adjacent in hostility: everything from
            // instant exhaustion to a full run.
            opts.limits.max_steps = rng.below(4) == 0 ? 64 : (1u << 14);
            opts.distribution_only = rng.below(8) == 0;
            try {
                const auto result = try_plan_fusion(w.graph, opts);
                if (result.ok()) planned.fetch_add(1);
                // A failure must be a classified Status, never Ok-with-nothing.
                if (!result.ok() && result.status().code() == StatusCode::Ok) {
                    failures.fetch_add(1);
                    ADD_FAILURE() << "non-Ok result with Ok status for " << w.id;
                }
            } catch (const std::exception& e) {
                failures.fetch_add(1);
                ADD_FAILURE() << "try_plan_fusion threw (" << w.id << ", fault " << point
                              << "): " << e.what();
            } catch (...) {
                failures.fetch_add(1);
                ADD_FAILURE() << "try_plan_fusion threw a non-exception";
            }
            faultpoint::disarm(point);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) threads.emplace_back(hammer, t);
    for (auto& t : threads) t.join();

    EXPECT_EQ(failures.load(), 0);
    // Sanity: the mix wasn't all-exhausted; some plans really ran.
    EXPECT_GT(planned.load(), 0);
}

TEST_F(SvcStressTest, ConcurrentServiceRunStaysTerminal) {
    // A wide manifest (gallery duplicated with fresh ids across rotating
    // breaker classes), more workers than cores will like, two faults
    // armed, and a starved first-attempt budget so the retry ladder is
    // genuinely exercised under contention.
    faultpoint::arm("solver.spfa");
    faultpoint::arm("cyclic_doall.phase1");

    std::vector<JobSpec> jobs;
    const std::vector<std::string> classes = {"alpha", "beta", "gamma", "delta"};
    for (int copy = 0; copy < 6; ++copy) {
        for (JobSpec job : full_gallery_jobs()) {
            job.id += "#" + std::to_string(copy);
            job.klass = classes[static_cast<std::size_t>(copy) % classes.size()];
            jobs.push_back(std::move(job));
        }
    }
    ASSERT_EQ(jobs.size(), 54u);

    ServiceConfig config;
    config.workers = 8;
    config.retry.max_attempts = 3;
    config.retry.initial_steps = 512;
    config.retry.escalation = 64;
    config.breaker.failure_threshold = 3;
    FusionService service(config);
    const RunReport report = service.run(jobs);

    ASSERT_EQ(report.jobs.size(), jobs.size());
    for (const auto& job : report.jobs) {
        ASSERT_TRUE(job.status == JobStatus::Verified || job.status == JobStatus::Quarantined)
            << job.id << " ended " << to_string(job.status);
        if (job.status == JobStatus::Quarantined) {
            EXPECT_FALSE(job.final_trace().empty()) << job.id;
        }
        EXPECT_GE(job.attempts.size(), 1u) << job.id;
        EXPECT_LE(job.attempts.size(), 3u) << job.id;
    }
    // The armed faults only degrade rungs, so most jobs verify -- but the
    // exact count depends on worker interleaving (an opened breaker may
    // short-circuit a fig14 copy to the fallback, which cannot execute
    // schedulable-only graphs and quarantines it). The invariant is
    // terminality, not a verdict tally.
    const RunCounts counts = report.counts();
    EXPECT_EQ(counts.verified + counts.quarantined, static_cast<int>(jobs.size()));
    EXPECT_GT(counts.verified, 0);
}

}  // namespace
}  // namespace lf::svc
