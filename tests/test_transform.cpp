// Tests for src/transform: fused-program construction, point/main ranges,
// and the three code emitters (checked against the paper's Figures 3/12).

#include <gtest/gtest.h>

#include "analysis/dependence.hpp"
#include "fusion/driver.hpp"
#include "ir/parser.hpp"
#include "support/diagnostics.hpp"
#include "exec/equivalence.hpp"
#include "support/rng.hpp"
#include "transform/codegen.hpp"
#include "transform/distribution.hpp"
#include "workloads/generators.hpp"
#include "transform/fused_program.hpp"
#include "workloads/sources.hpp"

namespace lf::transform {
namespace {

FusedProgram fig2_fused() {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    return fuse_program(p, plan);
}

TEST(FusedProgram, Fig2BodiesCarryTheAlgorithm4Retiming) {
    const FusedProgram fp = fig2_fused();
    ASSERT_EQ(fp.bodies.size(), 4u);
    EXPECT_EQ(fp.level, ParallelismLevel::InnerDoall);
    // Body order equals program order for fig2 (no (0,0) reordering needed
    // beyond C -> D which is already in order).
    EXPECT_EQ(fp.bodies[0].label, "A");
    EXPECT_EQ(fp.bodies[0].retiming, Vec2(0, 0));
    EXPECT_EQ(fp.bodies[2].label, "C");
    EXPECT_EQ(fp.bodies[2].retiming, Vec2(-1, 0));
    EXPECT_EQ(fp.bodies[3].label, "D");
    EXPECT_EQ(fp.bodies[3].retiming, Vec2(-1, -1));
}

TEST(FusedProgram, Fig2PointAndMainRanges) {
    const FusedProgram fp = fig2_fused();
    const Domain dom{10, 8};
    // Retimings: A,B (0,0); C (-1,0); D (-1,-1). Body u active at
    // p in [-r, (n,m) - r].
    EXPECT_EQ(fp.point_i_lo(), 0);
    EXPECT_EQ(fp.point_i_hi(dom), 11);
    EXPECT_EQ(fp.point_j_lo(), 0);
    EXPECT_EQ(fp.point_j_hi(dom), 9);
    EXPECT_EQ(fp.main_i_lo(), 1);       // paper Figure 12(b): DO 50 i=1,n
    EXPECT_EQ(fp.main_i_hi(dom), 10);
    EXPECT_EQ(fp.main_j_lo(), 1);       // DOALL 70 j=1,m
    EXPECT_EQ(fp.main_j_hi(dom), 8);
}

TEST(FusedProgram, RejectsMismatchedPlan) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const ir::Program q = ir::parse_program(workloads::sources::kJacobiPair);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(q));
    EXPECT_THROW((void)fuse_program(p, plan), Error);
}

TEST(Codegen, OriginalFormListsEveryLoop) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const std::string text = emit_original(p);
    EXPECT_NE(text.find("DO i = 0, n"), std::string::npos);
    for (const char* label : {"A", "B", "C", "D"}) {
        EXPECT_NE(text.find(std::string("! loop ") + label), std::string::npos);
    }
    EXPECT_NE(text.find("c[i][j] = ((b[i][j+2] - a[i][j-1]) + b[i][j-1]);"), std::string::npos);
}

TEST(Codegen, PeeledFormMatchesFigure12Structure) {
    const FusedProgram fp = fig2_fused();
    const std::string text = emit_fused_peeled(fp, Domain{10, 8});
    // Steady state bounds as in the paper: DO i = 1, n and DOALL j = 1, m.
    EXPECT_NE(text.find("DO i = 1, n"), std::string::npos);
    EXPECT_NE(text.find("DOALL j = 1, m"), std::string::npos);
    // Retimed statements, exactly as printed in Figure 12(b).
    EXPECT_NE(text.find("c[i-1][j] = ((b[i-1][j+2] - a[i-1][j-1]) + b[i-1][j-1]);"),
              std::string::npos);
    EXPECT_NE(text.find("d[i-1][j] = c[i-2][j];"), std::string::npos);
    EXPECT_NE(text.find("e[i-1][j-1] = c[i-1][j];"), std::string::npos);
    // Prologue/epilogue rows for the shifted loops C and D.
    EXPECT_NE(text.find("prologue rows"), std::string::npos);
    EXPECT_NE(text.find("epilogue rows"), std::string::npos);
    EXPECT_NE(text.find("j-prologue"), std::string::npos);
}

TEST(Codegen, GuardedFormCoversAllBodiesWithGuards) {
    const FusedProgram fp = fig2_fused();
    const std::string text = emit_fused_guarded(fp, Domain{10, 8});
    EXPECT_NE(text.find("guarded form"), std::string::npos);
    int guards = 0;
    for (std::size_t pos = 0; (pos = text.find("IF (", pos)) != std::string::npos; ++pos)
        ++guards;
    EXPECT_EQ(guards, 4);
}

TEST(Codegen, WavefrontFormForHyperplanePlans) {
    const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    ASSERT_EQ(plan.level, ParallelismLevel::Hyperplane);
    const FusedProgram fp = fuse_program(p, plan);
    const std::string text = emit_wavefront(fp, Domain{10, 10});
    EXPECT_NE(text.find("wavefront form"), std::string::npos);
    EXPECT_NE(text.find("DO t ="), std::string::npos);
    EXPECT_NE(text.find("DOALL (i, j) WITH"), std::string::npos);
    EXPECT_EQ(emit_transformed(fp, Domain{10, 10}), text);
}

TEST(Codegen, PeeledFormRejectsHyperplanePlans) {
    const ir::Program p = ir::parse_program(workloads::sources::kIirChain);
    const FusionPlan plan = plan_fusion(analysis::build_mldg(p));
    const FusedProgram fp = fuse_program(p, plan);
    EXPECT_THROW((void)emit_fused_peeled(fp, Domain{10, 10}), Error);
}

TEST(Distribution, SplitsMultiStatementLoopsOnly) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const ir::Program d = distribute_program(p);
    ASSERT_EQ(d.loops.size(), 5u);  // C's two statements split
    EXPECT_EQ(d.loops[0].label, "A");
    EXPECT_EQ(d.loops[2].label, "C_0");
    EXPECT_EQ(d.loops[3].label, "C_1");
    EXPECT_EQ(d.loops[4].label, "D");
    for (const auto& loop : d.loops) EXPECT_EQ(loop.body.size(), 1u);
}

TEST(Distribution, PreservesSemantics) {
    const ir::Program p = ir::parse_program(workloads::sources::kFig2);
    const ir::Program d = distribute_program(p);
    const Domain dom{14, 11};
    exec::ArrayStore a(p, dom), b(p, dom);
    (void)exec::run_original(p, dom, a);
    (void)exec::run_original(d, dom, b);
    EXPECT_FALSE(exec::first_difference(p, dom, a, b).has_value());
}

TEST(Distribution, DistributedProgramsStillFuseAndVerify) {
    // The dual pipeline: distribute (statement granularity), then fuse.
    for (const auto src : {workloads::sources::kFig2, workloads::sources::kJacobiPair,
                           workloads::sources::kIirChain}) {
        const ir::Program d = distribute_program(ir::parse_program(src));
        const auto result = exec::verify_fusion(d, Domain{13, 13}, exec::EngineKind::FusedRowwise);
        EXPECT_TRUE(result.equivalent) << d.name << ": " << result.detail;
    }
}

TEST(Distribution, StatementGranularityNeverWeakensTheParallelismLevel) {
    // Per-statement retiming has strictly more freedom; on the gallery the
    // achieved parallelism level must not regress.
    for (const auto src : {workloads::sources::kFig2, workloads::sources::kFig8,
                           workloads::sources::kJacobiPair}) {
        const ir::Program p = ir::parse_program(src);
        const FusionPlan whole = plan_fusion(analysis::build_mldg(p));
        const FusionPlan split = plan_fusion(analysis::build_mldg(distribute_program(p)));
        if (whole.level == ParallelismLevel::InnerDoall) {
            EXPECT_EQ(split.level, ParallelismLevel::InnerDoall) << p.name;
        }
    }
}

TEST(Distribution, RandomProgramsSurviveTheDualPipeline) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
        Rng rng(seed * 13 + 7);
        const ir::Program p = workloads::random_program(rng);
        const ir::Program d = distribute_program(p);
        const auto result = exec::verify_fusion(d, Domain{9, 9}, exec::EngineKind::FusedRowwise);
        EXPECT_TRUE(result.equivalent) << result.detail << "\n" << d.str();
    }
}

}  // namespace
}  // namespace lf::transform
