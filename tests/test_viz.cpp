// Tests for the SVG renderers: well-formedness, completeness (every node /
// every grid point appears) and the key semantic markers (hard-edge bold
// strokes, phase coloring matching the schedule).

#include <gtest/gtest.h>

#include "fusion/driver.hpp"
#include "viz/svg.hpp"
#include "workloads/gallery.hpp"

namespace lf {
namespace {

int count_occurrences(const std::string& text, const std::string& needle) {
    int count = 0;
    for (std::size_t pos = 0; (pos = text.find(needle, pos)) != std::string::npos;
         pos += needle.size()) {
        ++count;
    }
    return count;
}

TEST(SvgMldg, ContainsEveryNodeAndEdge) {
    const Mldg g = workloads::fig2_graph();
    const std::string svg = viz::svg_mldg(g, "fig2");
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    for (int v = 0; v < g.num_nodes(); ++v) {
        EXPECT_NE(svg.find(">" + g.node(v).name + "<"), std::string::npos);
    }
    // 4 node circles + 1 self-loop circle.
    EXPECT_EQ(count_occurrences(svg, "<circle"), 5);
    // 5 non-self edges as lines with arrowheads.
    EXPECT_EQ(count_occurrences(svg, "<line"), 5);
    // Exactly one hard edge: bold stroke plus the paper's '*' marker.
    EXPECT_EQ(count_occurrences(svg, "stroke-width=\"2.6\""), 1);
    EXPECT_NE(svg.find(" *"), std::string::npos);
    // Vector labels escaped and present.
    EXPECT_NE(svg.find("(0,-2) (0,1)"), std::string::npos);
}

TEST(SvgMldg, TitleIsEscaped) {
    Mldg g;
    g.add_node("A");
    const std::string svg = viz::svg_mldg(g, "a <b> & c");
    EXPECT_NE(svg.find("a &lt;b&gt; &amp; c"), std::string::npos);
    EXPECT_EQ(svg.find("<b>"), std::string::npos);
}

TEST(SvgIterationSpace, GridPointsAndPhasesMatchSchedule) {
    const FusionPlan plan = plan_fusion(workloads::fig2_graph());
    const std::string svg =
        viz::svg_iteration_space(plan.retimed, plan.schedule, 4, 6, "fig2 rows");
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    // 24 grid points.
    EXPECT_EQ(count_occurrences(svg, "<circle"), 24);
    // Row schedule (1,0): phases 0..3, each repeated 6 times as labels.
    EXPECT_EQ(count_occurrences(svg, ">0</text>"), 6);
    EXPECT_EQ(count_occurrences(svg, ">3</text>"), 6);
    // Dependence arrows exist (e.g. the (1,1) and (1,0) retimed vectors).
    EXPECT_GE(count_occurrences(svg, "url(#darrow)"), 2);
}

TEST(SvgIterationSpace, SkewedScheduleShowsDistinctPhasesPerRow) {
    const FusionPlan plan = plan_fusion(workloads::fig14_graph());
    ASSERT_EQ(plan.schedule, Vec2(4, 1));
    const std::string svg =
        viz::svg_iteration_space(plan.retimed, plan.schedule, 3, 5, "fig14 wavefront");
    // Phases 0..(4*2+4): the label "0" appears exactly once under the skew.
    EXPECT_EQ(count_occurrences(svg, ">0</text>"), 1);
    EXPECT_NE(svg.find("4*i + 1*j"), std::string::npos);
}

TEST(SvgBalancedTags, AllElementsClosed) {
    const Mldg g = workloads::iir_chain_graph();
    for (const std::string& svg :
         {viz::svg_mldg(g, "iir"),
          viz::svg_iteration_space(g, Vec2{1, 0}, 3, 3, "space")}) {
        EXPECT_EQ(count_occurrences(svg, "<text"), count_occurrences(svg, "</text>"));
        EXPECT_EQ(count_occurrences(svg, "<svg"), count_occurrences(svg, "</svg>"));
        // Every circle/line element is self-closed.
        EXPECT_GE(count_occurrences(svg, "/>"),
                  count_occurrences(svg, "<circle") + count_occurrences(svg, "<line"));
    }
}

}  // namespace
}  // namespace lf
