// Tests for the workload gallery and the random-instance generators.

#include <gtest/gtest.h>

#include "ldg/legality.hpp"
#include "workloads/gallery.hpp"
#include "workloads/generators.hpp"

namespace lf {
namespace {

TEST(Gallery, FiveWorkloadsInPaperOrder) {
    const auto& w = workloads::paper_workloads();
    ASSERT_EQ(w.size(), 5u);
    EXPECT_EQ(w[0].id, "fig8");
    EXPECT_EQ(w[1].id, "fig2");
    EXPECT_EQ(w[2].id, "fig14");
    EXPECT_EQ(w[3].id, "jacobi");
    EXPECT_EQ(w[4].id, "iir");
}

TEST(Gallery, ExecutableWorkloadsShipDslSources) {
    for (const auto& w : workloads::paper_workloads()) {
        if (w.id == "fig14") {
            EXPECT_TRUE(w.dsl_source.empty());  // dataflow-only specification
        } else {
            EXPECT_FALSE(w.dsl_source.empty()) << w.id;
        }
    }
}

TEST(Gallery, Fig8ShapeAndHardEdges) {
    const Mldg g = workloads::fig8_graph();
    EXPECT_EQ(g.num_nodes(), 7);
    EXPECT_EQ(g.num_edges(), 8);
    EXPECT_TRUE(g.is_acyclic());
    int hard = 0;
    for (const auto& e : g.edges()) hard += e.is_hard() ? 1 : 0;
    EXPECT_EQ(hard, 2);  // B->C and A->D
    EXPECT_TRUE(g.edge(*g.find_edge(1, 2)).is_hard());
    EXPECT_TRUE(g.edge(*g.find_edge(0, 3)).is_hard());
}

TEST(Gallery, Fig14ShapeAndCycles) {
    const Mldg g = workloads::fig14_graph();
    EXPECT_EQ(g.num_nodes(), 7);
    EXPECT_EQ(g.num_edges(), 10);
    EXPECT_FALSE(g.is_acyclic());
}

TEST(Gallery, JacobiAndIirAreCyclicWithHardEdges) {
    const Mldg j = workloads::jacobi_pair_graph();
    EXPECT_FALSE(j.is_acyclic());
    EXPECT_TRUE(j.edge(*j.find_edge(0, 1)).is_hard());
    EXPECT_TRUE(j.edge(*j.find_edge(1, 0)).is_hard());

    const Mldg f = workloads::iir_chain_graph();
    EXPECT_FALSE(f.is_acyclic());
    EXPECT_TRUE(f.edge(*f.find_edge(1, 2)).is_hard());  // F2->F3
    EXPECT_TRUE(f.edge(*f.find_edge(2, 1)).is_hard());  // F3->F2
}

class GeneratorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorTest, RandomLegalGraphsAreLegal) {
    Rng rng(GetParam());
    const Mldg g = workloads::random_legal_mldg(rng);
    EXPECT_TRUE(is_legal_mldg(g));
    EXPECT_TRUE(is_schedulable(g));
}

TEST_P(GeneratorTest, RandomSchedulableGraphsAreSchedulable) {
    Rng rng(GetParam() + 1000);
    const Mldg g = workloads::random_schedulable_mldg(rng);
    EXPECT_TRUE(is_schedulable(g));
}

TEST_P(GeneratorTest, GeneratorIsDeterministicPerSeed) {
    Rng a(GetParam()), b(GetParam());
    const Mldg ga = workloads::random_legal_mldg(a);
    const Mldg gb = workloads::random_legal_mldg(b);
    ASSERT_EQ(ga.num_nodes(), gb.num_nodes());
    ASSERT_EQ(ga.num_edges(), gb.num_edges());
    for (int e = 0; e < ga.num_edges(); ++e) {
        EXPECT_EQ(ga.edge(e).from, gb.edge(e).from);
        EXPECT_EQ(ga.edge(e).to, gb.edge(e).to);
        EXPECT_EQ(ga.edge(e).vectors, gb.edge(e).vectors);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorTest, ::testing::Range<std::uint64_t>(0, 25));

TEST(Generator, LargeInstancesStayLegal) {
    Rng rng(99);
    workloads::RandomGraphOptions opt;
    opt.num_nodes = 128;
    const Mldg g = workloads::random_legal_mldg(rng, opt);
    EXPECT_TRUE(is_legal_mldg(g));
    EXPECT_GT(g.num_edges(), 128);
}

}  // namespace
}  // namespace lf
