#!/usr/bin/env python3
"""Compare two bench_micro JSON summaries and flag regressions.

Works on both machine-readable outputs of bench/bench_micro:

  BENCH_plan.json    entries under "modes",     keyed by "mode",     metric ns_per_plan
  BENCH_solver.json  entries under "solvers",   keyed by "solver",   metric ns_per_op
  BENCH_svc.json     entries under "scenarios", keyed by "scenario", metric p99_us
                     (written by examples/storm_client against a live server)
  BENCH_exec.json    entries under "kernels",   keyed by "kernel",   metric fused_ns
                     (native compiled-and-sandboxed kernels; needs a C compiler)

For every entry present in both files the ratio current/baseline of the
time-per-item metric is computed; a ratio above --threshold is a
regression. Entries that exist on only one side are reported but never
fail the run (benchmarks come and go across PRs). For plan summaries,
a steady-state allocation count that was zero in the baseline and is
nonzero now is always flagged -- that is a correctness property of the
workspace arena, not a timing number, so no threshold applies.

Exit status: 0 when clean, 1 on regression -- unless --report-only is
given, which always exits 0 so CI can surface numbers without gating on
shared-runner timing noise. --gate ENTRY (repeatable) re-promotes specific
entries to hard failures even under --report-only: a regression in a gated
entry always exits 1. Use it for wins that are structural rather than
timing-noise-sized (e.g. the 2-D cold ladder after the shared
constraint-system refactor), where a > threshold slide means the
architecture regressed, not the runner.

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 2.0]
                      [--report-only] [--gate ENTRY]...
"""

import argparse
import json
import sys

# (array key, entry name key, time-per-item metric) per known schema.
SCHEMAS = [
    ("modes", "mode", "ns_per_plan"),
    ("solvers", "solver", "ns_per_op"),
    ("scenarios", "scenario", "p99_us"),
    ("kernels", "kernel", "fused_ns"),
]


def load_entries(path):
    with open(path) as f:
        doc = json.load(f)
    for array_key, name_key, metric in SCHEMAS:
        if array_key in doc:
            entries = {e[name_key]: e for e in doc[array_key]}
            return entries, metric
    sys.exit(f"bench_diff: {path}: no known entry array "
             f"(expected one of {[s[0] for s in SCHEMAS]})")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="regression factor on time-per-item (default 2.0)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison but always exit 0")
    ap.add_argument("--gate", action="append", default=[], metavar="ENTRY",
                    help="entry that fails the run on regression even under "
                         "--report-only (repeatable)")
    args = ap.parse_args()

    base, base_metric = load_entries(args.baseline)
    curr, curr_metric = load_entries(args.current)
    if base_metric != curr_metric:
        sys.exit("bench_diff: baseline and current use different schemas "
                 f"({base_metric} vs {curr_metric})")
    metric = base_metric

    for gate in args.gate:
        if gate not in base and gate not in curr:
            sys.exit(f"bench_diff: --gate {gate}: no such entry in either file "
                     "(misspelled gates would never fire)")

    regressions = []
    gated_regressions = []
    name_w = max([len(n) for n in (set(base) | set(curr))] + [len("entry")])
    print(f"{'entry':<{name_w}}  {'baseline':>12}  {'current':>12}  {'ratio':>7}  verdict")
    for name in sorted(set(base) | set(curr)):
        if name not in base:
            print(f"{name:<{name_w}}  {'-':>12}  {curr[name][metric]:>12.1f}  "
                  f"{'-':>7}  new (not in baseline)")
            continue
        if name not in curr:
            print(f"{name:<{name_w}}  {base[name][metric]:>12.1f}  {'-':>12}  "
                  f"{'-':>7}  removed")
            continue
        b, c = base[name][metric], curr[name][metric]
        ratio = c / b if b > 0 else float("inf")
        verdict = "ok"
        if ratio > args.threshold:
            verdict = f"REGRESSION (> {args.threshold:g}x)"
            regressions.append(f"{name}: {metric} {b:.1f} -> {c:.1f} ({ratio:.2f}x)")
            if name in args.gate:
                verdict += " [gated]"
                gated_regressions.append(name)
        elif ratio < 1.0 / args.threshold:
            verdict = "improved"
        print(f"{name:<{name_w}}  {b:>12.1f}  {c:>12.1f}  {ratio:>6.2f}x  {verdict}")

        alloc_b = base[name].get("allocations_per_plan")
        alloc_c = curr[name].get("allocations_per_plan")
        if alloc_b == 0 and alloc_c is not None and alloc_c > 0:
            msg = f"{name}: allocations_per_plan was 0, now {alloc_c}"
            regressions.append(msg)
            if name in args.gate:
                gated_regressions.append(name)
            print(f"{'':<{name_w}}  {'':>12}  {'':>12}  {'':>7}  "
                  f"ALLOC REGRESSION ({alloc_c}/plan, baseline 0)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) vs {args.baseline}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        if not args.report_only:
            sys.exit(1)
        if gated_regressions:
            print("gated entries regressed, failing despite report-only: "
                  + ", ".join(sorted(set(gated_regressions))), file=sys.stderr)
            sys.exit(1)
        print("(report-only: not failing the run)", file=sys.stderr)
    else:
        print("\nno regressions")


if __name__ == "__main__":
    main()
