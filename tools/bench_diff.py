#!/usr/bin/env python3
"""Compare two bench_micro JSON summaries and flag regressions.

Works on both machine-readable outputs of bench/bench_micro:

  BENCH_plan.json    entries under "modes",     keyed by "mode",     metric ns_per_plan
  BENCH_solver.json  entries under "solvers",   keyed by "solver",   metric ns_per_op
  BENCH_svc.json     entries under "scenarios", keyed by "scenario", metric p99_us
                     (written by examples/storm_client against a live server)
  BENCH_exec.json    entries under "kernels",   keyed by "kernel",   metric fused_ns
                     (native compiled-and-sandboxed kernels; needs a C compiler)
  BENCH_exec_par.json entries under "speedups", keyed by "kernel",   metric speedup_t4
                     (parallel-entry speedup curves; higher is better,
                     so the regression ratio inverts to baseline/current)
  BENCH_codesize.json entries under "codesize", keyed by "kernel",   metric source_bytes
                     (emitted-C size under a plan policy; lower is better.
                     compile_ns -- also lower-is-better -- is shown as an
                     informational secondary ratio but never gates: cold-
                     compile wall time is runner noise, bytes are not)

A file whose top-level arrays-of-objects include a key outside this table
is a hard failure, never a guess: the old behavior of picking the first
recognized array silently compared the wrong (or no) data when a schema
was renamed or misspelled.

For every entry present in both files the ratio current/baseline of the
time-per-item metric is computed; a ratio above --threshold is a
regression. Entries that exist on only one side are reported but never
fail the run (benchmarks come and go across PRs). For plan summaries,
a steady-state allocation count that was zero in the baseline and is
nonzero now is always flagged -- that is a correctness property of the
workspace arena, not a timing number, so no threshold applies.

Speedup baselines are reference-host artifacts: the checked-in file
records the host_cpus it was measured on, and a 1-CPU CI runner will
legitimately show every curve below 1.0 (the lanes time-slice one core).
Two provisions keep the diff meaningful anyway:

  * a baseline entry may carry a per-kernel "tolerance" field overriding
    --threshold for that kernel (wavefront kernels are noisier than
    row-parallel ones);
  * --require ENTRY (repeatable) asserts that ENTRY's current speedup_t4
    is >= 1.0 -- parallel no slower than serial at 4 threads -- and fails
    the run on violation even under --report-only. The assertion is
    skipped (with a note) when the *current* file's host_cpus is below 4,
    so it only bites on hosts that can physically show a speedup.

A missing or malformed baseline file is always a hard failure, also under
--report-only: a silently absent baseline would make every future
regression invisible.

Exit status: 0 when clean, 1 on regression -- unless --report-only is
given, which always exits 0 so CI can surface numbers without gating on
shared-runner timing noise. --gate ENTRY (repeatable) re-promotes specific
entries to hard failures even under --report-only: a regression in a gated
entry always exits 1. Use it for wins that are structural rather than
timing-noise-sized (e.g. the 2-D cold ladder after the shared
constraint-system refactor), where a > threshold slide means the
architecture regressed, not the runner.

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json [--threshold 2.0]
                      [--report-only] [--gate ENTRY]... [--require ENTRY]...
"""

import argparse
import json
import sys

# (array key, entry name key, per-item metric) per known schema.
SCHEMAS = [
    ("modes", "mode", "ns_per_plan"),
    ("solvers", "solver", "ns_per_op"),
    ("scenarios", "scenario", "p99_us"),
    ("kernels", "kernel", "fused_ns"),
    ("speedups", "kernel", "speedup_t4"),
    ("codesize", "kernel", "source_bytes"),
]

# Metrics where larger is better: the regression ratio inverts to
# baseline/current so "ratio > threshold" still reads as "got worse".
HIGHER_IS_BETTER = {"speedup_t4"}


def load_entries(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"bench_diff: {path}: cannot read baseline/current: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_diff: {path}: malformed JSON: {e}")
    known = {s[0]: s for s in SCHEMAS}
    found = []
    for key, value in doc.items():
        if not isinstance(value, list):
            continue
        if key in known:
            found.append(known[key])
        elif value and all(isinstance(e, dict) for e in value):
            # An array of objects under an unknown key is a schema we do not
            # speak -- renamed, misspelled, or newer than this script. Guessing
            # (the old first-match behavior) would silently compare the wrong
            # data or nothing at all.
            sys.exit(f"bench_diff: {path}: unrecognized entry array '{key}' "
                     f"(known: {sorted(known)}); refusing to guess a schema")
    if len(found) != 1:
        sys.exit(f"bench_diff: {path}: expected exactly one known entry array, "
                 f"found {[s[0] for s in found]} "
                 f"(expected one of {[s[0] for s in SCHEMAS]})")
    array_key, name_key, metric = found[0]
    try:
        entries = {e[name_key]: e for e in doc[array_key]}
    except (KeyError, TypeError):
        sys.exit(f"bench_diff: {path}: entries under '{array_key}' "
                 f"lack the '{name_key}' key")
    return entries, metric, doc


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="regression factor on time-per-item (default 2.0)")
    ap.add_argument("--report-only", action="store_true",
                    help="print the comparison but always exit 0")
    ap.add_argument("--gate", action="append", default=[], metavar="ENTRY",
                    help="entry that fails the run on regression even under "
                         "--report-only (repeatable)")
    ap.add_argument("--require", action="append", default=[], metavar="ENTRY",
                    help="assert ENTRY's current speedup_t4 >= 1.0 (parallel "
                         "no slower than serial at 4 threads); skipped when "
                         "the current file's host_cpus < 4; fails even under "
                         "--report-only (repeatable)")
    args = ap.parse_args()

    base, base_metric, _base_doc = load_entries(args.baseline)
    curr, curr_metric, curr_doc = load_entries(args.current)
    if base_metric != curr_metric:
        sys.exit("bench_diff: baseline and current use different schemas "
                 f"({base_metric} vs {curr_metric})")
    metric = base_metric
    inverted = metric in HIGHER_IS_BETTER

    for gate in args.gate:
        if gate not in base and gate not in curr:
            sys.exit(f"bench_diff: --gate {gate}: no such entry in either file "
                     "(misspelled gates would never fire)")
    if args.require and metric != "speedup_t4":
        sys.exit("bench_diff: --require only applies to the speedup schema "
                 "(BENCH_exec_par.json)")

    regressions = []
    gated_regressions = []
    name_w = max([len(n) for n in (set(base) | set(curr))] + [len("entry")])
    print(f"{'entry':<{name_w}}  {'baseline':>12}  {'current':>12}  {'ratio':>7}  verdict")
    for name in sorted(set(base) | set(curr)):
        if name not in base:
            c = curr[name].get(metric)
            shown = f"{c:>12.1f}" if c is not None else f"{'-':>12}"
            print(f"{name:<{name_w}}  {'-':>12}  {shown}  "
                  f"{'-':>7}  new (not in baseline)")
            continue
        if name not in curr:
            b = base[name].get(metric)
            shown = f"{b:>12.1f}" if b is not None else f"{'-':>12}"
            print(f"{name:<{name_w}}  {shown}  {'-':>12}  "
                  f"{'-':>7}  removed")
            continue
        b, c = base[name].get(metric), curr[name].get(metric)
        if b is None or c is None:
            # A speedup row without its metric means that side's kernel did
            # not verify at every thread count; surface it, don't crash.
            print(f"{name:<{name_w}}  {'-':>12}  {'-':>12}  {'-':>7}  "
                  f"no {metric} (kernel not verified on one side)")
            continue
        # For higher-is-better metrics the ratio inverts so that a value
        # above the threshold always means "got worse".
        denom = c if inverted else b
        ratio = ((b / c) if inverted else (c / b)) if denom > 0 else float("inf")
        threshold = base[name].get("tolerance", args.threshold)
        verdict = "ok"
        if ratio > threshold:
            verdict = f"REGRESSION (> {threshold:g}x)"
            regressions.append(f"{name}: {metric} {b:.1f} -> {c:.1f} ({ratio:.2f}x worse)")
            if name in args.gate:
                verdict += " [gated]"
                gated_regressions.append(name)
        elif ratio < 1.0 / threshold:
            verdict = "improved"
        print(f"{name:<{name_w}}  {b:>12.1f}  {c:>12.1f}  {ratio:>6.2f}x  {verdict}")

        if metric == "source_bytes":
            # Cold-compile wall time rides along informationally: lower is
            # better, but it is runner-speed noise, so it never gates.
            cns_b = base[name].get("compile_ns")
            cns_c = curr[name].get("compile_ns")
            if cns_b and cns_c:
                cns_ratio = cns_c / cns_b
                print(f"{'':<{name_w}}  {cns_b:>12.0f}  {cns_c:>12.0f}  "
                      f"{cns_ratio:>6.2f}x  compile_ns (informational)")

        alloc_b = base[name].get("allocations_per_plan")
        alloc_c = curr[name].get("allocations_per_plan")
        if alloc_b == 0 and alloc_c is not None and alloc_c > 0:
            msg = f"{name}: allocations_per_plan was 0, now {alloc_c}"
            regressions.append(msg)
            if name in args.gate:
                gated_regressions.append(name)
            print(f"{'':<{name_w}}  {'':>12}  {'':>12}  {'':>7}  "
                  f"ALLOC REGRESSION ({alloc_c}/plan, baseline 0)")

    require_failures = []
    if args.require:
        host_cpus = curr_doc.get("host_cpus", 0)
        if host_cpus < 4:
            print(f"\n--require skipped: current host_cpus={host_cpus} < 4 "
                  "(a time-sliced core cannot show a speedup)")
        else:
            for name in args.require:
                entry = curr.get(name)
                speedup = entry.get("speedup_t4") if entry else None
                if entry is None:
                    require_failures.append(f"{name}: entry missing from current")
                elif speedup is None:
                    require_failures.append(
                        f"{name}: no speedup_t4 (kernel did not verify)")
                elif speedup < 1.0:
                    require_failures.append(
                        f"{name}: speedup_t4 {speedup:.3f} < 1.0 "
                        "(parallel slower than serial at 4 threads)")
                else:
                    print(f"--require {name}: speedup_t4 {speedup:.3f} >= 1.0 ok")

    if regressions:
        print(f"\n{len(regressions)} regression(s) vs {args.baseline}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
    if require_failures:
        print(f"\n{len(require_failures)} --require violation(s):", file=sys.stderr)
        for r in require_failures:
            print(f"  {r}", file=sys.stderr)
        sys.exit(1)  # required properties fail even under --report-only
    if regressions:
        if not args.report_only:
            sys.exit(1)
        if gated_regressions:
            print("gated entries regressed, failing despite report-only: "
                  + ", ".join(sorted(set(gated_regressions))), file=sys.stderr)
            sys.exit(1)
        print("(report-only: not failing the run)", file=sys.stderr)
    if not regressions:
        print("\nno regressions")


if __name__ == "__main__":
    main()
