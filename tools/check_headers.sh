#!/usr/bin/env bash
# Header self-containment check: every public header under src/ must compile
# on its own (all of its includes reachable from the header itself). Catches
# headers that silently rely on what their usual includers happen to pull in.
#
# Usage: tools/check_headers.sh [compiler]
set -u

cd "$(dirname "$0")/.."
CXX="${1:-${CXX:-c++}}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Retired forwarding shims must stay deleted: new code includes the real
# homes (front/parse.hpp, analysis/dependence.hpp, exec/*_nd.hpp,
# transform/codegen_nd.hpp, support/lexvec.hpp) directly.
retired="src/mdir src/support/vec2.hpp src/support/vecn.hpp"
for path in $retired; do
    if [ -e "$path" ]; then
        echo "RETIRED SHIM RESURRECTED: $path"
        exit 1
    fi
done

failures=0
count=0
for header in $(find src -name '*.hpp' | sort); do
    count=$((count + 1))
    tu="$tmpdir/tu.cpp"
    printf '#include "%s"\n' "${header#src/}" > "$tu"
    if ! "$CXX" -std=c++20 -fsyntax-only -Isrc -Wall -Wextra "$tu" 2> "$tmpdir/err.txt"; then
        echo "NOT SELF-CONTAINED: $header"
        sed 's/^/    /' "$tmpdir/err.txt"
        failures=$((failures + 1))
    fi
done

if [ "$failures" -ne 0 ]; then
    echo "$failures of $count headers are not self-contained"
    exit 1
fi
echo "all $count headers are self-contained"
