#!/usr/bin/env bash
# exec_drill.sh -- the crash-contained native execution acceptance drills.
#
# Mirrors docs/execution.md: every emitted gallery kernel must compile, run
# in the forked sandbox and verify against the interpreter -- serially and
# through the ABI v2 parallel entry; deliberately broken kernels (SIGSEGV /
# infinite spin / address-space exhaustion / a lane crashing or wedging
# mid-wavefront) and armed exec.* fault points must end as typed contained
# outcomes while the driving process survives; a service run with native
# execution enabled must keep every job terminal (Verified |
# Quarantined-with-trace); a warm restart against the same --store must
# recompile nothing; and when the compiler supports ThreadSanitizer, the
# emitted parallel kernels must run race-free at 4 lanes.
#
# Exits 0 when every drill passes. When no C compiler is on PATH the native
# drills cannot run at all: the script reports that and exits 0 (skipping is
# the documented degraded mode -- the interpreter tier still gates every
# plan; CI runners without cc must not go red).
#
# Usage: tools/exec_drill.sh [BUILD_DIR] [PLAN_POLICY]
#   BUILD_DIR    default: build
#   PLAN_POLICY  fastest (default) or smallest -- threaded through every
#                emit_c / fusion_service invocation, so CI runs the whole
#                drill once per planning objective.

set -euo pipefail

BUILD_DIR="${1:-build}"
POLICY="${2:-fastest}"
EMIT="$BUILD_DIR/examples/example_emit_c"
SERVICE="$BUILD_DIR/examples/example_fusion_service"
BENCH="$BUILD_DIR/bench/bench_micro"
[[ -x "$EMIT" && -x "$SERVICE" ]] || {
    echo "exec_drill: build $EMIT and $SERVICE first" >&2
    exit 2
}

if ! command -v cc >/dev/null 2>&1; then
    echo "exec_drill: no C compiler on PATH; native drills skipped" >&2
    exit 0
fi

WORK="$(mktemp -d /tmp/lf_exec_drill.XXXXXX)"
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

fail=0

echo "== native verification: every replayable workload (policy: $POLICY) =="
for w in fig2 fig8 jacobi iir volume3d hyper4d; do
    if "$EMIT" --workload "$w" --plan-policy "$POLICY" --run \
            >/dev/null 2>"$WORK/$w.err"; then
        echo "ok: $w verified natively"
    else
        echo "FAIL: $w did not verify:" >&2
        cat "$WORK/$w.err" >&2
        fail=1
    fi
done

echo "== parallel verification: ABI v2 entry at 4 lanes =="
for w in fig2 fig8 jacobi iir volume3d hyper4d; do
    if "$EMIT" --workload "$w" --plan-policy "$POLICY" --run --threads 4 \
            >/dev/null 2>"$WORK/par_$w.err"; then
        echo "ok: $w verified thread-count invariant at 4 lanes"
    else
        echo "FAIL: $w parallel entry did not verify:" >&2
        cat "$WORK/par_$w.err" >&2
        fail=1
    fi
done

echo "== containment: deliberately broken kernels =="
for drill in crash spin oom par-crash par-spin; do
    # Exit 0 from --drill means: the documented typed outcome was observed
    # AND the parent survived to report it.
    if "$EMIT" --drill "$drill" >/dev/null 2>"$WORK/drill_$drill.err"; then
        echo "ok: $drill contained"
    else
        echo "FAIL: $drill drill:" >&2
        cat "$WORK/drill_$drill.err" >&2
        fail=1
    fi
done

echo "== containment: armed exec.* fault points =="
# With a fault armed, the native check must come back as a *contained*
# failure (exit 2 from --run), never a harness error or a crash.
for point in exec.compile exec.spawn exec.run exec.timeout exec.oom; do
    LF_FAULT="$point" "$EMIT" --workload jacobi --plan-policy "$POLICY" --run \
        >/dev/null 2>"$WORK/fault_$point.err" && rc=0 || rc=$?
    if [[ "$rc" == 2 ]]; then
        echo "ok: $point -> contained quarantine"
    else
        echo "FAIL: $point exited $rc (want 2):" >&2
        cat "$WORK/fault_$point.err" >&2
        fail=1
    fi
done

echo "== service: native admission over the full gallery =="
if "$SERVICE" --exec --workers 2 --plan-policy "$POLICY" --exec-cache "$WORK/cache" \
        --report "$WORK/run.json" >"$WORK/svc.out" 2>&1; then
    if grep -q '"native": "verified"' "$WORK/run.json" &&
       ! grep -q '"quarantined": [1-9]' "$WORK/run.json"; then
        echo "ok: service natively verified the gallery"
    else
        echo "FAIL: service report missing native verifications" >&2
        fail=1
    fi
else
    echo "FAIL: service run with --exec" >&2
    cat "$WORK/svc.out" >&2
    fail=1
fi

echo "== service: parallel admission (--exec-threads 2) =="
if "$SERVICE" --exec --exec-threads 2 --workers 2 --plan-policy "$POLICY" \
        --exec-cache "$WORK/cache_par" \
        --report "$WORK/par.json" >"$WORK/svc_par.out" 2>&1; then
    if grep -q '"native_par_threads": 2' "$WORK/par.json"; then
        echo "ok: service verified kernels through the parallel entry"
    else
        echo "FAIL: no native_par_threads=2 job in report" >&2
        fail=1
    fi
else
    echo "FAIL: service run with --exec-threads 2" >&2
    cat "$WORK/svc_par.out" >&2
    fail=1
fi

echo "== store: warm restart recompiles nothing =="
# --store implies the sibling objects/ cache tier: a second service run
# against the same store must serve every kernel from disk (compiles == 0).
rc=0
"$SERVICE" --exec --workers 2 --plan-policy "$POLICY" --store "$WORK/store" \
    --report "$WORK/cold.json" >"$WORK/svc_cold.out" 2>&1 || rc=$?
if [[ "$rc" == 0 ]] && "$SERVICE" --exec --workers 2 --plan-policy "$POLICY" \
        --store "$WORK/store" \
        --report "$WORK/warm.json" >"$WORK/svc_warm.out" 2>&1; then
    python3 - "$WORK/cold.json" "$WORK/warm.json" <<'EOF' && \
        echo "ok: warm restart served every object from the store" || fail=1
import json, sys
cold = json.load(open(sys.argv[1]))["exec"]
warm = json.load(open(sys.argv[2]))["exec"]
if cold["compiles"] == 0:
    print("FAIL: cold run compiled nothing (drill is vacuous)")
    sys.exit(1)
if warm["compiles"] != 0 or warm["cache_hits"] == 0:
    print(f"FAIL: warm restart recompiled: {warm}")
    sys.exit(1)
EOF
else
    echo "FAIL: service runs against --store" >&2
    cat "$WORK/svc_cold.out" "$WORK/svc_warm.out" >&2
    fail=1
fi

echo "== service: crashing kernels are quarantined, service survives =="
if LF_FAULT=exec.run "$SERVICE" --exec --workers 2 --attempts 1 \
        --plan-policy "$POLICY" \
        --exec-cache "$WORK/cache_crash" --report "$WORK/crash.json" \
        >"$WORK/svc_crash.out" 2>&1; then
    # Every replayable job must be Quarantined-with-trace (the exit-0
    # terminal-state invariant already asserts the trace part); the service
    # process itself must have survived to write the report.
    if grep -q '"native": "crashed"' "$WORK/crash.json"; then
        echo "ok: crashed kernels quarantined with trace; service survived"
    else
        echo "FAIL: no crashed-kernel quarantine in report" >&2
        fail=1
    fi
else
    echo "FAIL: service run under exec.run violated terminal states" >&2
    cat "$WORK/svc_crash.out" >&2
    fail=1
fi

if [[ -x "$BENCH" ]]; then
    echo "== bench: fused vs unfused native wall time =="
    if "$BENCH" --benchmark_filter=NONE --solver_json= --plan_json= \
            --exec_json="$WORK/BENCH_exec.json" >/dev/null 2>&1 &&
       [[ -s "$WORK/BENCH_exec.json" ]]; then
        echo "ok: BENCH_exec.json written"
        python3 - "$WORK/BENCH_exec.json" <<'EOF' || fail=1
import json, sys
doc = json.load(open(sys.argv[1]))
bad = [k for k in doc["kernels"] if k["native"] != "verified"]
if bad:
    print("FAIL: unverified bench kernels:", [k["kernel"] for k in bad])
    sys.exit(1)
for k in doc["kernels"]:
    print(f"   {k['kernel']}: fused/unfused = {k['ratio']}")
EOF
    else
        echo "FAIL: bench_micro --exec_json" >&2
        fail=1
    fi
else
    echo "== bench: $BENCH not built; skipping =="
fi

echo "== tsan: emitted parallel kernels are race-free at 4 lanes =="
# The emitted pool synchronizes through C11 atomics and a condvar; TSan
# over the standalone program is the strongest local race check we have.
# Skipped (not failed) when the toolchain lacks libtsan.
echo 'int main(void) { return 0; }' > "$WORK/tsan_probe.c"
if cc -fsanitize=thread -pthread -o "$WORK/tsan_probe" "$WORK/tsan_probe.c" \
        >/dev/null 2>&1 && "$WORK/tsan_probe" >/dev/null 2>&1; then
    for w in fig2 fig8 jacobi iir volume3d hyper4d; do
        "$EMIT" --workload "$w" --plan-policy "$POLICY" > "$WORK/tsan_$w.c" 2>/dev/null
        if cc -O1 -fsanitize=thread -pthread -o "$WORK/tsan_$w" "$WORK/tsan_$w.c" \
                2>"$WORK/tsan_$w.cc.err" &&
           LF_THREADS=4 "$WORK/tsan_$w" >"$WORK/tsan_$w.out" 2>"$WORK/tsan_$w.err" &&
           grep -q '^OK ' "$WORK/tsan_$w.out"; then
            echo "ok: $w race-free under TSan (4 lanes)"
        else
            echo "FAIL: $w under ThreadSanitizer:" >&2
            cat "$WORK/tsan_$w.cc.err" "$WORK/tsan_$w.err" >&2
            fail=1
        fi
    done
else
    echo "tsan unavailable on this toolchain; sweep skipped"
fi

if (( fail )); then
    echo "exec_drill: FAILED" >&2
    exit 1
fi
echo "exec_drill: all drills passed"
