#!/usr/bin/env bash
# storm_drill.sh -- the fusion_server acceptance drills.
#
# Two parts, mirroring docs/robustness.md ("The network edge"):
#
#   1. Fault-point storms: one loopback storm per net.* fault point (the
#      fault fires on every hit, so transport flaps are the *expected*
#      outcome -- the pass criterion is typed outcomes only: zero protocol
#      violations, a clean server stop, never a crash or a hang).
#   2. The kill -9 drill: warm the persistent plan tier, SIGKILL the server
#      mid-storm, corrupt one on-disk plan, restart on the same store, and
#      assert (a) the corrupt entry is quarantined and healed by rewrite,
#      (b) every untouched pre-kill plan file is byte-identical, and
#      (c) the reborn server still answers verified.
#
# Usage: tools/storm_drill.sh [BUILD_DIR]     (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/examples/example_fusion_server"
CLIENT="$BUILD_DIR/examples/example_storm_client"
[[ -x "$SERVER" && -x "$CLIENT" ]] || {
    echo "storm_drill: build $SERVER and $CLIENT first" >&2
    exit 2
}

WORK="$(mktemp -d /tmp/lf_storm_drill.XXXXXX)"
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# Starts the server in the background with the given extra flags, waits for
# the bound port to land in the port file, and sets SERVER_PID / PORT.
start_server() {
    local port_file="$WORK/port"
    rm -f "$port_file"
    "$SERVER" --port 0 --port-file "$port_file" --workers 4 "$@" \
        >"$WORK/server.out" 2>"$WORK/server.err" &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        [[ -s "$port_file" ]] && break
        kill -0 "$SERVER_PID" 2>/dev/null || {
            echo "storm_drill: server died on startup:" >&2
            cat "$WORK/server.err" >&2
            exit 1
        }
        sleep 0.05
    done
    [[ -s "$port_file" ]] || { echo "storm_drill: no port file" >&2; exit 1; }
    PORT="$(cat "$port_file")"
}

stop_server() {
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

fail=0

echo "== selftest =="
"$SERVER" --selftest >/dev/null || { echo "FAIL: selftest" >&2; fail=1; }

echo "== baseline storm (no faults) =="
start_server
if "$CLIENT" --port "$PORT" --requests 40 --connections 4 --tenants 2 >/dev/null; then
    echo "ok: baseline"
else
    echo "FAIL: baseline storm" >&2; fail=1
fi
stop_server

for point in net.accept net.read net.write net.torn_response; do
    echo "== fault storm: $point =="
    LF_FAULT="$point" start_server
    # The armed fault fires on every hit, so transport failures are the
    # design outcome; protocol violations are the only failure.
    if "$CLIENT" --port "$PORT" --requests 16 --connections 2 \
            --timeout-ms 3000 --tolerate-transport >/dev/null; then
        echo "ok: $point (typed outcomes only)"
    else
        echo "FAIL: $point produced a protocol violation" >&2; fail=1
    fi
    stop_server
done

echo "== fault storm: svc.plancache.disk (disk tier down, service up) =="
LF_FAULT=svc.plancache.disk start_server --store "$WORK/faulted_store"
if "$CLIENT" --port "$PORT" --requests 16 --connections 2 >/dev/null; then
    echo "ok: svc.plancache.disk (every request still answered)"
else
    echo "FAIL: svc.plancache.disk storm" >&2; fail=1
fi
stop_server

echo "== kill -9 / corrupt / restart drill =="
STORE="$WORK/store"
start_server --store "$STORE" --checkpoint "$WORK/svc.ckpt"
# Warm every gallery source the storm client cycles through, so the store
# holds one plan file per distinct key before the kill.
"$CLIENT" --port "$PORT" --requests 8 --connections 2 >/dev/null \
    || { echo "FAIL: warmup storm" >&2; fail=1; }
shopt -s nullglob
plans=("$STORE"/*.plan)
shopt -u nullglob
if (( ${#plans[@]} < 2 )); then
    echo "FAIL: expected >=2 persisted plans, found ${#plans[@]}" >&2
    fail=1
fi
victim="${plans[0]}"
( cd "$STORE" && sha256sum *.plan ) | grep -v "$(basename "$victim")" \
    > "$WORK/pre_kill.sha256"

# SIGKILL mid-storm: no flush, no goodbye.
"$CLIENT" --port "$PORT" --requests 400 --connections 4 \
    --tolerate-transport >/dev/null 2>&1 &
storm_pid=$!
sleep 0.3
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
wait "$storm_pid" 2>/dev/null || true

# Corrupt one survivor the way a torn write would: truncate mid-body.
truncate -s 40 "$victim"

start_server --store "$STORE" --checkpoint "$WORK/svc.ckpt"
if "$CLIENT" --port "$PORT" --requests 8 --connections 2 >/dev/null; then
    echo "ok: reborn server answers verified"
else
    echo "FAIL: post-restart storm" >&2; fail=1
fi
stop_server

shopt -s nullglob
quarantined=("$STORE"/*.quarantined)
shopt -u nullglob
if (( ${#quarantined[@]} >= 1 )); then
    echo "ok: corrupt entry quarantined (${quarantined[0]##*/})"
else
    echo "FAIL: corrupt plan was not quarantined" >&2; fail=1
fi
if [[ -f "$victim" ]]; then
    echo "ok: quarantined entry healed by rewrite"
else
    echo "FAIL: quarantined entry was not rebuilt" >&2; fail=1
fi
if ( cd "$STORE" && sha256sum -c "$WORK/pre_kill.sha256" --quiet ); then
    echo "ok: untouched pre-kill plans byte-identical after kill -9"
else
    echo "FAIL: pre-kill plan files changed across the kill" >&2; fail=1
fi

if (( fail )); then
    echo "storm_drill: FAILED" >&2
    exit 1
fi
echo "storm_drill: all drills passed"
